// HealthCenter contract: a bounded ring of structured events with monotone
// sequence numbers, severity counters in the registry, subscriber fan-out
// on the raising thread, the TraceRecorder-style install/active pattern
// behind health_raise(), and a JSONL export whose every line is a
// self-contained JSON object (the flight recorder's health_events.jsonl).
#include "obs/health/health.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace overcount {
namespace {

TEST(HealthCenter, RingIsBoundedAndSequenceMonotone) {
  HealthCenter center(nullptr, 4);
  for (int i = 0; i < 6; ++i)
    center.raise(HealthSeverity::kInfo, "test.code", "test",
                 "event " + std::to_string(i), static_cast<double>(i));
  EXPECT_EQ(center.total_raised(), 6u);
  const std::vector<HealthEvent> recent = center.recent();
  ASSERT_EQ(recent.size(), 4u);  // capacity bounds retention
  // Oldest two were dropped; survivors are oldest-first with their original
  // (monotone) sequence numbers intact.
  for (std::size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].value, static_cast<double>(i + 2));
    EXPECT_EQ(recent[i].seq, i + 2);
    EXPECT_EQ(recent[i].code, "test.code");
  }
}

TEST(HealthCenter, CountsEventsPerSeverityInTheRegistry) {
  MetricsRegistry registry;
  HealthCenter center(&registry);
  center.raise(HealthSeverity::kInfo, "a", "t", "m");
  center.raise(HealthSeverity::kWarn, "b", "t", "m");
  center.raise(HealthSeverity::kWarn, "c", "t", "m");
  center.raise(HealthSeverity::kCritical, "d", "t", "m");
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or_zero("health.events"), 4u);
  EXPECT_EQ(snap.counter_or_zero("health.info"), 1u);
  EXPECT_EQ(snap.counter_or_zero("health.warn"), 2u);
  EXPECT_EQ(snap.counter_or_zero("health.critical"), 1u);
}

TEST(HealthCenter, WorstTracksHighestSeverityEverRaised) {
  HealthCenter center;
  EXPECT_EQ(center.worst(), HealthSeverity::kInfo);
  center.raise(HealthSeverity::kWarn, "a", "t", "m");
  EXPECT_EQ(center.worst(), HealthSeverity::kWarn);
  center.raise(HealthSeverity::kCritical, "b", "t", "m");
  center.raise(HealthSeverity::kInfo, "c", "t", "m");
  EXPECT_EQ(center.worst(), HealthSeverity::kCritical);  // never decays
}

TEST(HealthCenter, SubscribersSeeEveryEvent) {
  HealthCenter center;
  std::vector<std::string> seen;
  center.subscribe([&](const HealthEvent& e) { seen.push_back(e.code); });
  center.subscribe([&](const HealthEvent& e) { seen.push_back(e.code); });
  center.raise(HealthSeverity::kWarn, "x", "t", "m");
  ASSERT_EQ(seen.size(), 2u);  // both subscribers, same event
  EXPECT_EQ(seen[0], "x");
  EXPECT_EQ(seen[1], "x");
}

TEST(HealthCenter, HealthRaiseRoutesThroughInstalledCenter) {
  // With no center installed, health_raise is a no-op branch.
  EXPECT_FALSE(health_active());
  health_raise(HealthSeverity::kCritical, "lost", "t", "m");

  HealthCenter center;
  center.install();
  EXPECT_TRUE(health_active());
  EXPECT_EQ(HealthCenter::active(), &center);
  health_raise(HealthSeverity::kWarn, "found", "t", "m", 7.0, 5.0);
  center.uninstall();
  EXPECT_FALSE(health_active());
  health_raise(HealthSeverity::kWarn, "lost-again", "t", "m");

  const std::vector<HealthEvent> recent = center.recent();
  ASSERT_EQ(recent.size(), 1u);  // only the event raised while installed
  EXPECT_EQ(recent[0].code, "found");
  EXPECT_EQ(recent[0].value, 7.0);
  EXPECT_EQ(recent[0].threshold, 5.0);
}

TEST(HealthCenter, JsonlExportParsesLineByLine) {
  HealthCenter center;
  center.raise(HealthSeverity::kCritical, "shard.superstep_stall", "shard",
               "no beat for 2s", 2e6, 1e6);
  center.raise(HealthSeverity::kWarn, "audit.variance_envelope", "audit",
               "spread too wide", std::nan(""), 0.3);
  std::ostringstream os;
  write_health_events_jsonl(os, center.recent());
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    const JsonValue doc = parse_json(line);  // throws on malformed JSON
    ASSERT_TRUE(doc.is_object()) << line;
    for (const char* key :
         {"seq", "ts_us", "severity", "code", "subsystem", "message", "value",
          "threshold"})
      ASSERT_NE(doc.find(key), nullptr) << key << " missing in " << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  // Non-finite values must render as null, not as bare `nan` (which would
  // make the whole line unparseable).
  const std::string text = os.str();
  const std::size_t second = text.find('\n') + 1;
  const JsonValue warn = parse_json(text.substr(second));
  EXPECT_TRUE(warn.find("value")->is_null());
  EXPECT_EQ(warn.find("severity")->as_string(), "warn");
  EXPECT_EQ(warn.find("code")->as_string(), "audit.variance_envelope");
}

}  // namespace
}  // namespace overcount

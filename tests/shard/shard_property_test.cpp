// Structural invariants of the sharded graph layer, fuzzed over the
// estimator graph zoo, both partition policies and a sweep of shard counts:
// the plan must be a bijection, the shard CSR slices must tile the source
// adjacency exactly (every directed edge present exactly once, rows
// verbatim), ghost tables must round-trip, and — through the engine — every
// token pushed must be drained (issued == retired conservation, or a walk
// was lost/duplicated in the mail).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "shard/engine.hpp"
#include "shard/partition.hpp"
#include "shard/segment.hpp"
#include "test_helpers.hpp"

namespace overcount {
namespace {

const std::uint32_t kShardCounts[] = {1, 2, 3, 4, 8};

/// Both policies, so every invariant is checked against a non-trivial owner
/// assignment too.
std::vector<const Partitioner*> policies() {
  static const ContiguousRangePartitioner contiguous;
  static const DegreeBalancedPartitioner balanced;
  return {&contiguous, &balanced};
}

class ShardProperty : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(ShardProperty, PlanIsABijection) {
  Rng rng(2024);
  const Graph g = GetParam().make(rng);
  for (const Partitioner* policy : policies()) {
    for (const std::uint32_t shards : kShardCounts) {
      const ShardPlan plan = make_shard_plan(g, shards, *policy);
      ASSERT_EQ(plan.num_nodes(), g.num_nodes());
      ASSERT_EQ(plan.num_shards(), shards);
      std::size_t covered = 0;
      for (std::uint32_t s = 0; s < shards; ++s) {
        const auto owned = plan.nodes_of(s);
        covered += owned.size();
        for (std::uint32_t l = 0; l < owned.size(); ++l) {
          const NodeId v = owned[l];
          EXPECT_EQ(plan.shard_of(v), s);
          EXPECT_EQ(plan.local_id(v), l);
          EXPECT_EQ(plan.global_id(s, l), v);
          if (l > 0) {
            EXPECT_LT(owned[l - 1], v);  // local ids ascend
          }
        }
      }
      EXPECT_EQ(covered, g.num_nodes());  // with the per-node checks above:
                                          // every node exactly once
    }
  }
}

TEST_P(ShardProperty, ShardSlicesTileTheSourceAdjacencyExactly) {
  Rng rng(2025);
  const Graph g = GetParam().make(rng);
  for (const Partitioner* policy : policies()) {
    for (const std::uint32_t shards : kShardCounts) {
      const ShardPlan plan = make_shard_plan(g, shards, *policy);
      const ShardedGraph sharded(g, plan);
      std::size_t directed_edges = 0;
      for (std::uint32_t s = 0; s < shards; ++s) {
        const auto& shard = sharded.shard(s);
        ASSERT_EQ(shard.offsets.size(), shard.nodes.size() + 1);
        for (std::uint32_t l = 0; l < shard.nodes.size(); ++l) {
          const NodeId v = shard.nodes[l];
          const auto source_row = g.neighbors(v);
          const auto local_row = shard.neighbors(l);
          directed_edges += local_row.size();
          ASSERT_EQ(local_row.size(), source_row.size());
          for (std::size_t k = 0; k < source_row.size(); ++k)
            EXPECT_EQ(local_row[k], source_row[k]);  // verbatim row order
        }
      }
      // Every directed edge of the source appears in exactly one slice:
      // rows are verbatim and each node has exactly one owner, so matching
      // the total closes the count.
      EXPECT_EQ(directed_edges, sharded.total_degree());
      std::size_t source_total = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        source_total += g.degree(v);
      EXPECT_EQ(directed_edges, source_total);
    }
  }
}

TEST_P(ShardProperty, GhostTablesRoundTripAndCoverExactlyTheCrossEdges) {
  Rng rng(2026);
  const Graph g = GetParam().make(rng);
  for (const Partitioner* policy : policies()) {
    for (const std::uint32_t shards : kShardCounts) {
      const ShardPlan plan = make_shard_plan(g, shards, *policy);
      const ShardedGraph sharded(g, plan);
      for (std::uint32_t s = 0; s < shards; ++s) {
        const auto& shard = sharded.shard(s);
        // Every ghost entry names a non-owned node and round-trips through
        // the plan's coordinate system.
        for (const auto& [target, ref] : shard.ghosts) {
          EXPECT_NE(plan.shard_of(target), s);
          EXPECT_EQ(ref.shard, plan.shard_of(target));
          EXPECT_EQ(ref.local, plan.local_id(target));
          EXPECT_EQ(plan.global_id(ref.shard, ref.local), target);
        }
        // Every cross-shard adjacency target has a ghost entry, and the
        // boundary list holds exactly the owned nodes with one.
        std::unordered_set<NodeId> crossing_targets;
        std::unordered_set<NodeId> boundary_nodes;
        for (std::uint32_t l = 0; l < shard.nodes.size(); ++l) {
          for (const NodeId t : shard.neighbors(l)) {
            if (plan.shard_of(t) == s) continue;
            crossing_targets.insert(t);
            boundary_nodes.insert(shard.nodes[l]);
            const GhostRef ref = sharded.resolve(s, t);
            EXPECT_EQ(plan.global_id(ref.shard, ref.local), t);
          }
        }
        EXPECT_EQ(shard.ghosts.size(), crossing_targets.size());
        ASSERT_EQ(shard.boundary.size(), boundary_nodes.size());
        for (const NodeId b : shard.boundary) {
          EXPECT_TRUE(boundary_nodes.contains(b));
          EXPECT_EQ(plan.shard_of(b), s);
        }
      }
      // resolve() must also work for nodes no edge of `s` points at (the
      // stitched fast path can land anywhere) via the plan fallback.
      for (std::uint32_t s = 0; s < shards; ++s) {
        for (const NodeId v :
             {NodeId{0}, static_cast<NodeId>(g.num_nodes() - 1)}) {
          const GhostRef ref = sharded.resolve(s, v);
          EXPECT_EQ(ref.shard, plan.shard_of(v));
          EXPECT_EQ(ref.local, plan.local_id(v));
        }
      }
    }
  }
}

TEST_P(ShardProperty, TokenConservationAcrossAllEstimators) {
  Rng rng(2027);
  const Graph g = GetParam().make(rng);
  NodeId origin = 0;
  while (g.degree(origin) == 0) ++origin;

  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE(::testing::Message() << "S=" << shards);
    const ShardPlan plan = make_shard_plan(g, shards);
    const ShardedGraph sharded(g, plan);
    ParallelRunner runner(4);
    MetricsRegistry metrics;
    ShardedWalkEngine engine(sharded, runner, &metrics);

    const std::size_t m = 24;
    engine.run_tours(origin, m, [](NodeId) { return 1.0; }, 0xC0FFEE);
    {
      const ShardRunStats& s = engine.last_run_stats();
      EXPECT_EQ(s.walks, m);
      EXPECT_EQ(s.tokens_issued, s.tokens_consumed);  // conservation
      EXPECT_LE(s.tokens_issued, s.handoffs + m);     // seeds + migrations
    }

    engine.run_samples(origin, m, 2.0, 0xC0FFEE);
    {
      const ShardRunStats& s = engine.last_run_stats();
      EXPECT_EQ(s.walks, m);
      EXPECT_EQ(s.tokens_issued, s.tokens_consumed);
    }

    engine.run_sc_trials(origin, 6, 2.0, 2, 0xC0FFEE);
    {
      const ShardRunStats& s = engine.last_run_stats();
      EXPECT_EQ(s.walks, 6u);
      EXPECT_EQ(s.tokens_issued, s.tokens_consumed);
    }

    // The registry's running totals agree with the per-run stats, and no
    // token is left in flight once the batches returned.
    const auto snap = metrics.snapshot();
    EXPECT_EQ(snap.counter_or_zero("shard.tokens_issued"),
              snap.counter_or_zero("shard.tokens_consumed"));
    for (const auto& [name, value] : snap.gauges)
      if (name == "shard.tokens_in_flight") {
        EXPECT_EQ(value, 0.0);
      }
  }
}

TEST_P(ShardProperty, SegmentsWalkRealEdgesAndRefillOnDemand) {
  Rng rng(2028);
  const Graph g = GetParam().make(rng);
  const ShardPlan plan = make_shard_plan(g, 4);
  const ShardedGraph sharded(g, plan);
  StitchConfig cfg;
  cfg.segments_per_node = 2;
  cfg.segment_length = 8;
  SegmentStore store(sharded, cfg);

  std::size_t boundary_total = 0;
  for (std::uint32_t s = 0; s < sharded.num_shards(); ++s)
    boundary_total += sharded.shard(s).boundary.size();
  EXPECT_EQ(store.pooled_nodes(), boundary_total);

  for (std::uint32_t s = 0; s < sharded.num_shards(); ++s) {
    for (const NodeId b : sharded.shard(s).boundary) {
      // Draw past the precomputed pool: refill must keep producing valid
      // segments, each a real walk on the snapshot topology.
      for (std::size_t draw = 0; draw < cfg.segments_per_node + 3; ++draw) {
        const WalkSegment* seg = store.take(b);
        ASSERT_NE(seg, nullptr);
        ASSERT_EQ(seg->nodes.size(), cfg.segment_length + 1);
        ASSERT_EQ(seg->sojourns.size(), cfg.segment_length);
        EXPECT_EQ(seg->nodes.front(), b);
        for (std::size_t k = 0; k + 1 < seg->nodes.size(); ++k) {
          const auto row = g.neighbors(seg->nodes[k]);
          EXPECT_TRUE(std::find(row.begin(), row.end(), seg->nodes[k + 1]) !=
                      row.end())
              << "segment step " << k << " is not an edge";
          EXPECT_GT(seg->sojourns[k], 0.0);
        }
      }
    }
  }
  EXPECT_GE(store.segments_generated(),
            static_cast<std::uint64_t>(boundary_total) *
                cfg.segments_per_node);
}

INSTANTIATE_TEST_SUITE_P(
    GraphZoo, ShardProperty,
    ::testing::ValuesIn(testing::estimator_graph_cases()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(ShardPropertyDynamic, ChurnedDynamicGraphTilesExactlyOverSlots) {
  Rng rng(31);
  DynamicGraph dg(balanced_random_graph(120, rng));
  dg.remove_node(5);
  dg.remove_node(60);
  dg.add_node(std::vector<NodeId>{1, 2, 70});
  ASSERT_TRUE(dg.check_invariants());

  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    const ShardPlan plan = make_shard_plan(dg, shards);
    ASSERT_EQ(plan.num_nodes(), dg.num_slots());  // dead slots owned too
    const ShardedGraph sharded(dg, plan);
    EXPECT_EQ(sharded.source_version(), dg.version());
    std::size_t directed_edges = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
      const auto& shard = sharded.shard(s);
      for (std::uint32_t l = 0; l < shard.nodes.size(); ++l) {
        const NodeId v = shard.nodes[l];
        const auto source_row = dg.neighbors(v);
        const auto local_row = shard.neighbors(l);
        directed_edges += local_row.size();
        ASSERT_EQ(local_row.size(), source_row.size());
        if (!dg.alive(v)) {
          EXPECT_TRUE(local_row.empty());
        }
        for (std::size_t k = 0; k < source_row.size(); ++k)
          EXPECT_EQ(local_row[k], source_row[k]);
      }
    }
    EXPECT_EQ(directed_edges, dg.total_degree());
  }
}

}  // namespace
}  // namespace overcount

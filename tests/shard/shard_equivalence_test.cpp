// The sharded walk engine's correctness claim: splitting the graph into S
// shards and completing walks by message passing is a pure reordering of
// WHERE steps execute, never of WHICH steps execute. These tests pin that
// bit-for-bit against the single-shard reference — every tour estimate,
// CTRW sample, S&C trial, folded WalkStats and registry metric stream must
// equal the scalar/kernel path exactly, over S in {1,2,4,8} x threads
// {1,2,8} x kernel widths {1,16}, including max_steps truncation parity and
// the all-truncated NaN audit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "core/parallel.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "shard/engine.hpp"
#include "shard/partition.hpp"

namespace overcount {
namespace {

constexpr std::uint64_t kSeed = 0xFEEDBEEF;
const std::uint32_t kShards[] = {1, 2, 4, 8};
const unsigned kThreads[] = {1, 2, 8};
const std::size_t kWidths[] = {1, 16};

Graph test_graph() {
  Rng rng(99);
  return balanced_random_graph(400, rng);
}

void expect_same_walk_stats(const WalkStats& a, const WalkStats& b) {
  EXPECT_EQ(a.walks, b.walks);
  EXPECT_EQ(a.visits, b.visits);
  EXPECT_EQ(a.revisits, b.revisits);
  EXPECT_EQ(a.rejects, b.rejects);
  EXPECT_EQ(a.tours, b.tours);
  EXPECT_EQ(a.completed_tours, b.completed_tours);
  EXPECT_EQ(a.truncated_tours, b.truncated_tours);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.sojourn_time, b.sojourn_time);  // bitwise: per-walk FP order
  EXPECT_EQ(a.tour_steps.count, b.tour_steps.count);
  EXPECT_EQ(a.tour_steps.sum, b.tour_steps.sum);
  EXPECT_EQ(a.sample_hops.count, b.sample_hops.count);
  EXPECT_EQ(a.sample_hops.sum, b.sample_hops.sum);
  EXPECT_EQ(a.collision_gaps.count, b.collision_gaps.count);
  EXPECT_EQ(a.collision_gaps.sum, b.collision_gaps.sum);
}

std::vector<RegistryProbe> make_probes(MetricsRegistry& registry,
                                       std::size_t n) {
  std::vector<RegistryProbe> probes;
  probes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) probes.emplace_back(registry, "walk");
  return probes;
}

void expect_snapshots_match(const MetricsSnapshot& scalar,
                            const MetricsSnapshot& sharded,
                            bool exact_gauges) {
  ASSERT_EQ(scalar.counters.size(), sharded.counters.size());
  for (std::size_t i = 0; i < scalar.counters.size(); ++i) {
    EXPECT_EQ(scalar.counters[i].first, sharded.counters[i].first);
    EXPECT_EQ(scalar.counters[i].second, sharded.counters[i].second)
        << scalar.counters[i].first;
  }
  ASSERT_EQ(scalar.histograms.size(), sharded.histograms.size());
  for (std::size_t i = 0; i < scalar.histograms.size(); ++i) {
    EXPECT_EQ(scalar.histograms[i].first, sharded.histograms[i].first);
    const Log2Histogram& a = scalar.histograms[i].second;
    const Log2Histogram& b = sharded.histograms[i].second;
    EXPECT_EQ(a.count, b.count) << scalar.histograms[i].first;
    EXPECT_EQ(a.sum, b.sum) << scalar.histograms[i].first;
    EXPECT_EQ(a.min, b.min) << scalar.histograms[i].first;
    EXPECT_EQ(a.max, b.max) << scalar.histograms[i].first;
    for (std::size_t k = 0; k < Log2Histogram::kBuckets; ++k)
      EXPECT_EQ(a.buckets[k], b.buckets[k]) << scalar.histograms[i].first;
  }
  ASSERT_EQ(scalar.gauges.size(), sharded.gauges.size());
  for (std::size_t i = 0; i < scalar.gauges.size(); ++i) {
    EXPECT_EQ(scalar.gauges[i].first, sharded.gauges[i].first);
    const double a = scalar.gauges[i].second;
    const double b = sharded.gauges[i].second;
    if (exact_gauges) {
      EXPECT_EQ(a, b) << scalar.gauges[i].first;
    } else {
      EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::abs(a)))
          << scalar.gauges[i].first;
    }
  }
}

TEST(ShardEquivalence, ToursBitIdenticalAcrossShardsThreadsWidths) {
  const Graph g = test_graph();
  const std::size_t m = 48;

  // Scalar reference: one stream per walk, the pre-kernel path.
  auto streams = derive_streams(kSeed, m);
  std::vector<TourEstimate> reference;
  reference.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    reference.push_back(random_tour_size(g, 0, streams[i]));

  for (const std::uint32_t shards : kShards) {
    const ShardPlan plan = make_shard_plan(g, shards);
    const ShardedGraph sharded(g, plan);
    for (const unsigned threads : kThreads) {
      for (const std::size_t width : kWidths) {
        SCOPED_TRACE(::testing::Message() << "S=" << shards << " threads="
                                          << threads << " width=" << width);
        // The runner's kernel width drives the single-shard comparison
        // batch; the engine itself never consults it — asserting both
        // against the same reference closes the triangle.
        ParallelRunner runner(threads, width);
        ShardedWalkEngine engine(sharded, runner);
        const TourBatch via_engine = engine.run_tours(
            0, m, [](NodeId) { return 1.0; }, kSeed);
        const TourBatch via_kernel = run_tours_size(g, 0, m, kSeed, runner);
        ASSERT_EQ(via_engine.tours.size(), m);
        EXPECT_EQ(via_engine.stats.tasks, m);
        for (std::size_t i = 0; i < m; ++i) {
          EXPECT_EQ(via_engine.tours[i].value, reference[i].value);  // bitwise
          EXPECT_EQ(via_engine.tours[i].steps, reference[i].steps);
          EXPECT_EQ(via_engine.tours[i].completed, reference[i].completed);
          EXPECT_EQ(via_engine.tours[i].value, via_kernel.tours[i].value);
        }
        EXPECT_EQ(via_engine.sum, via_kernel.sum);  // same tree reduction
        EXPECT_EQ(via_engine.completed, via_kernel.completed);
        EXPECT_EQ(via_engine.total_steps, via_kernel.total_steps);
        const ShardRunStats& stats = engine.last_run_stats();
        EXPECT_EQ(stats.walks, m);
        if (shards == 1) {
          EXPECT_EQ(stats.handoffs, 0u);
        }
      }
    }
  }
}

TEST(ShardEquivalence, ProbedToursFoldIdenticalWalkStats) {
  const Graph g = test_graph();
  const std::size_t m = 48;

  auto streams = derive_streams(kSeed, m);
  std::vector<WalkStats> per_walk(m);
  std::vector<TourEstimate> reference;
  reference.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    WalkStatsProbe probe(per_walk[i]);
    reference.push_back(random_tour_size(g, 0, streams[i], ~0ULL, probe));
  }
  const WalkStats folded = detail::fold_walk_stats(per_walk);

  for (const std::uint32_t shards : kShards) {
    const ShardPlan plan = make_shard_plan(g, shards);
    for (const unsigned threads : kThreads) {
      SCOPED_TRACE(::testing::Message()
                   << "S=" << shards << " threads=" << threads);
      ParallelRunner runner(threads);
      WalkStats walk_stats;
      const TourBatch batch = run_tours_probed(
          g, 0, m, [](NodeId) { return 1.0; }, kSeed, runner, plan,
          walk_stats);
      for (std::size_t i = 0; i < m; ++i) {
        EXPECT_EQ(batch.tours[i].value, reference[i].value);
        EXPECT_EQ(batch.tours[i].steps, reference[i].steps);
      }
      expect_same_walk_stats(walk_stats, folded);
      EXPECT_EQ(walk_stats.tours, m);
      EXPECT_EQ(walk_stats.tour_steps.sum, batch.total_steps);
    }
  }
}

TEST(ShardEquivalence, RegistryMetricStreamsMatchScalar) {
  const Graph g = test_graph();
  const std::size_t m = 40;

  MetricsRegistry scalar_registry;
  {
    auto streams = derive_streams(kSeed, m);
    auto probes = make_probes(scalar_registry, m);
    for (std::size_t i = 0; i < m; ++i)
      random_tour_size(g, 0, streams[i], ~0ULL, probes[i]);
  }
  const auto scalar_snap = scalar_registry.snapshot();
  EXPECT_EQ(scalar_snap.counter_or_zero("walk.tours"), m);

  for (const std::uint32_t shards : {2u, 8u}) {
    for (const unsigned threads : kThreads) {
      SCOPED_TRACE(::testing::Message()
                   << "S=" << shards << " threads=" << threads);
      const ShardPlan plan = make_shard_plan(g, shards);
      const ShardedGraph sharded(g, plan);
      ParallelRunner runner(threads);
      // A separate registry receives the walk.* stream; the engine's own
      // shard.* metrics stay out of it so the snapshots line up 1:1.
      MetricsRegistry registry;
      auto probes = make_probes(registry, m);
      ShardedWalkEngine engine(sharded, runner);
      engine.run_tours(
          0, m, [](NodeId) { return 1.0; }, kSeed, ~0ULL,
          std::span<RegistryProbe>(probes));
      // Tours never touch the sojourn gauge, so gauges compare bitwise too.
      expect_snapshots_match(scalar_snap, registry.snapshot(),
                             /*exact_gauges=*/true);
    }
  }
}

TEST(ShardEquivalence, MaxStepsTruncationParity) {
  // On a ring every tour is long, so tight caps truncate aggressively; the
  // sharded path must flag and cap exactly like the scalar loop, including
  // the max_steps == 1 edge where the walk never leaves the seeding phase.
  const Graph g = ring(64);
  const std::size_t m = 32;
  for (const std::uint64_t max_steps :
       {std::uint64_t{1}, std::uint64_t{5}, std::uint64_t{200}}) {
    auto streams = derive_streams(kSeed, m);
    std::vector<TourEstimate> reference;
    reference.reserve(m);
    for (std::size_t i = 0; i < m; ++i)
      reference.push_back(random_tour_size(g, 7, streams[i], max_steps));

    for (const std::uint32_t shards : {2u, 4u, 8u}) {
      for (const unsigned threads : kThreads) {
        SCOPED_TRACE(::testing::Message() << "max_steps=" << max_steps
                                          << " S=" << shards
                                          << " threads=" << threads);
        const ShardPlan plan = make_shard_plan(g, shards);
        ParallelRunner runner(threads);
        WalkStats walk_stats;
        const TourBatch batch = run_tours_probed(
            g, 7, m, [](NodeId) { return 1.0; }, kSeed, runner, plan,
            walk_stats, max_steps);
        std::size_t truncated = 0;
        for (std::size_t i = 0; i < m; ++i) {
          EXPECT_EQ(batch.tours[i].value, reference[i].value);
          EXPECT_EQ(batch.tours[i].steps, reference[i].steps);
          EXPECT_EQ(batch.tours[i].completed, reference[i].completed);
          if (!reference[i].completed) ++truncated;
        }
        EXPECT_EQ(batch.truncated, truncated);
        EXPECT_EQ(walk_stats.truncated_tours, truncated);
      }
    }
  }
}

// The TourBatch::mean NaN audit, sharded edition: a batch where EVERY tour
// hit max_steps must report ok() == false and a NaN mean exactly like the
// scalar path — never 0.0, never a tiny "estimate".
TEST(ShardEquivalence, AllTruncatedShardedBatchReportsNotOkLikeScalar) {
  const Graph g = ring(64);
  const std::size_t m = 16;
  // max_steps = 1: on a ring the first step can never return to the origin,
  // so every tour truncates.
  const std::uint64_t max_steps = 1;

  ParallelRunner runner(2);
  const TourBatch scalar = run_tours_size(g, 7, m, kSeed, runner, max_steps);
  ASSERT_EQ(scalar.completed, 0u);
  ASSERT_FALSE(scalar.ok());
  ASSERT_TRUE(std::isnan(scalar.mean()));

  for (const std::uint32_t shards : {2u, 8u}) {
    SCOPED_TRACE(::testing::Message() << "S=" << shards);
    const ShardPlan plan = make_shard_plan(g, shards);
    const TourBatch batch =
        run_tours_size(g, 7, m, kSeed, runner, plan, max_steps);
    EXPECT_EQ(batch.completed, 0u);
    EXPECT_EQ(batch.truncated, m);
    EXPECT_FALSE(batch.ok());
    EXPECT_TRUE(std::isnan(batch.mean()));
    EXPECT_EQ(batch.sum, scalar.sum);  // 0.0 either way, bitwise
  }
}

TEST(ShardEquivalence, CtrwSamplesBitIdenticalToScalar) {
  const Graph g = test_graph();
  const std::size_t m = 40;
  const double timer = 3.0;

  auto streams = derive_streams(kSeed, m);
  std::vector<SampleResult> reference;
  reference.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    reference.push_back(ctrw_sample(g, 0, timer, streams[i]));

  for (const std::uint32_t shards : kShards) {
    const ShardPlan plan = make_shard_plan(g, shards);
    for (const unsigned threads : kThreads) {
      SCOPED_TRACE(::testing::Message()
                   << "S=" << shards << " threads=" << threads);
      ParallelRunner runner(threads);
      const SampleBatch batch =
          run_samples(g, 0, m, timer, kSeed, runner, plan);
      WalkStats walk_stats;
      const SampleBatch probed =
          run_samples_probed(g, 0, m, timer, kSeed, runner, plan, walk_stats);
      for (std::size_t i = 0; i < m; ++i) {
        EXPECT_EQ(batch.samples[i].node, reference[i].node);
        EXPECT_EQ(batch.samples[i].hops, reference[i].hops);
        EXPECT_EQ(probed.samples[i].node, reference[i].node);
        EXPECT_EQ(probed.samples[i].hops, reference[i].hops);
      }
      EXPECT_EQ(walk_stats.samples, m);
      EXPECT_EQ(walk_stats.sample_hops.sum, batch.total_hops);
    }
  }
}

TEST(ShardEquivalence, ScTrialsBitIdenticalToScalar) {
  const Graph g = test_graph();
  const std::size_t trials = 24;
  const std::size_t ell = 4;
  const double timer = 2.5;

  auto streams = derive_streams(kSeed, trials);
  std::vector<ScEstimate> reference;
  reference.reserve(trials);
  for (std::size_t i = 0; i < trials; ++i) {
    SampleCollideEstimator estimator(g, 0, timer, ell, streams[i]);
    reference.push_back(estimator.estimate());
  }

  for (const std::uint32_t shards : kShards) {
    const ShardPlan plan = make_shard_plan(g, shards);
    for (const unsigned threads : kThreads) {
      SCOPED_TRACE(::testing::Message()
                   << "S=" << shards << " threads=" << threads);
      ParallelRunner runner(threads);
      const ScBatch batch =
          run_sc_trials(g, 0, trials, timer, ell, kSeed, runner, plan);
      WalkStats walk_stats;
      const ScBatch probed = run_sc_trials_probed(g, 0, trials, timer, ell,
                                                  kSeed, runner, plan,
                                                  walk_stats);
      for (std::size_t i = 0; i < trials; ++i) {
        SCOPED_TRACE(::testing::Message() << "trial=" << i);
        EXPECT_EQ(batch.trials[i].ml, reference[i].ml);  // bitwise
        EXPECT_EQ(batch.trials[i].simple, reference[i].simple);
        EXPECT_EQ(batch.trials[i].n_minus, reference[i].n_minus);
        EXPECT_EQ(batch.trials[i].n_plus, reference[i].n_plus);
        EXPECT_EQ(batch.trials[i].samples, reference[i].samples);
        EXPECT_EQ(batch.trials[i].hops, reference[i].hops);
        EXPECT_EQ(batch.trials[i].replies, reference[i].replies);
        EXPECT_EQ(probed.trials[i].ml, reference[i].ml);
        EXPECT_EQ(probed.trials[i].samples, reference[i].samples);
        EXPECT_EQ(probed.trials[i].hops, reference[i].hops);
      }
      EXPECT_EQ(walk_stats.collisions, trials * ell);
    }
  }
}

TEST(ShardEquivalence, ScRegistryStreamsMatchScalar) {
  const Graph g = test_graph();
  const std::size_t trials = 12;
  const std::size_t ell = 4;
  const double timer = 2.5;

  MetricsRegistry scalar_registry;
  {
    auto streams = derive_streams(kSeed, trials);
    auto probes = make_probes(scalar_registry, trials);
    for (std::size_t i = 0; i < trials; ++i) {
      SampleCollideEstimator estimator(g, 0, timer, ell, streams[i]);
      estimator.estimate(probes[i]);
    }
  }
  const auto scalar_snap = scalar_registry.snapshot();
  EXPECT_EQ(scalar_snap.counter_or_zero("walk.collisions"), trials * ell);

  for (const std::uint32_t shards : {2u, 8u}) {
    SCOPED_TRACE(::testing::Message() << "S=" << shards);
    const ShardPlan plan = make_shard_plan(g, shards);
    const ShardedGraph sharded(g, plan);
    ParallelRunner runner(8);
    MetricsRegistry registry;
    auto probes = make_probes(registry, trials);
    ShardedWalkEngine engine(sharded, runner);
    engine.run_sc_trials(0, trials, timer, ell, kSeed,
                         std::span<RegistryProbe>(probes));
    // The sojourn gauge sums doubles in migration order; everything else is
    // integer arithmetic and must match bitwise.
    expect_snapshots_match(scalar_snap, registry.snapshot(),
                           /*exact_gauges=*/false);
  }
}

TEST(ShardEquivalence, DynamicGraphShardedMatchesScalarAfterChurn) {
  Rng rng(7);
  DynamicGraph dg(balanced_random_graph(200, rng));
  // Churn: dead slots and fresh nodes make the slot space differ from the
  // alive set, exactly what the plan-over-slots contract must absorb.
  dg.remove_node(3);
  dg.remove_node(117);
  dg.add_node(std::vector<NodeId>{0, 50, 99});
  dg.remove_edge(dg.neighbors(0)[0], 0);

  const NodeId origin = 42;
  ASSERT_GT(dg.degree(origin), 0u);
  const std::size_t m = 24;

  auto streams = derive_streams(kSeed, m);
  std::vector<TourEstimate> reference;
  reference.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    reference.push_back(random_tour_size(dg, origin, streams[i]));

  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE(::testing::Message() << "S=" << shards);
    const ShardPlan plan = make_shard_plan(dg, shards);
    const ShardedGraph sharded(dg, plan);
    EXPECT_EQ(sharded.source_version(), dg.version());
    ParallelRunner runner(4);
    ShardedWalkEngine engine(sharded, runner);
    const TourBatch batch = engine.run_tours(
        origin, m, [](NodeId) { return 1.0; }, kSeed);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(batch.tours[i].value, reference[i].value);
      EXPECT_EQ(batch.tours[i].steps, reference[i].steps);
    }
  }
}

// Bit-identity must hold for ANY owner assignment, not just contiguous
// ranges: the partition policy moves handoff edges around but can never
// touch the numbers.
TEST(ShardEquivalence, DegreeBalancedPartitionGivesSameResults) {
  const Graph g = test_graph();
  const std::size_t m = 32;
  ParallelRunner runner(4);
  const TourBatch reference = run_tours_size(g, 0, m, kSeed, runner);

  const ShardPlan plan =
      make_shard_plan(g, 4, DegreeBalancedPartitioner{});
  const TourBatch batch = run_tours_size(g, 0, m, kSeed, runner, plan);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_EQ(batch.tours[i].value, reference.tours[i].value);
    EXPECT_EQ(batch.tours[i].steps, reference.tours[i].steps);
  }
  EXPECT_EQ(batch.sum, reference.sum);
}

// Stitched runs consume the segment store's streams instead of the walks',
// so they are NOT bit-identical to scalar — but for a fixed (plan, stitch
// seed) they must still be deterministic at any thread count.
TEST(ShardEquivalence, StitchedRunsDeterministicAcrossThreadCounts) {
  const Graph g = test_graph();
  const std::size_t m = 32;
  const ShardPlan plan = make_shard_plan(g, 4);
  const ShardedGraph sharded(g, plan);

  std::vector<TourEstimate> first;
  ShardRunStats first_stats;
  for (const unsigned threads : {1u, 8u}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ParallelRunner runner(threads);
    SegmentStore store(sharded, StitchConfig{});
    ShardedWalkEngine engine(sharded, runner);
    engine.enable_stitching(store);
    const TourBatch batch = engine.run_tours(
        0, m, [](NodeId) { return 1.0; }, kSeed);
    const ShardRunStats& stats = engine.last_run_stats();
    EXPECT_GT(stats.stitches, 0u);
    if (first.empty()) {
      first = batch.tours;
      first_stats = stats;
    } else {
      ASSERT_EQ(batch.tours.size(), first.size());
      for (std::size_t i = 0; i < m; ++i) {
        EXPECT_EQ(batch.tours[i].value, first[i].value);  // bitwise
        EXPECT_EQ(batch.tours[i].steps, first[i].steps);
      }
      // The message schedule itself is deterministic too: strict BSP
      // delivery means the superstep count, handoffs, stitches and token
      // totals cannot depend on how the pool timed the shard tasks.
      EXPECT_EQ(stats.rounds, first_stats.rounds);
      EXPECT_EQ(stats.handoffs, first_stats.handoffs);
      EXPECT_EQ(stats.stitches, first_stats.stitches);
      EXPECT_EQ(stats.stitch_steps, first_stats.stitch_steps);
      EXPECT_EQ(stats.tokens_issued, first_stats.tokens_issued);
      EXPECT_EQ(stats.tokens_consumed, first_stats.tokens_consumed);
    }
  }
}

}  // namespace
}  // namespace overcount

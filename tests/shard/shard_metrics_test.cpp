// Token-accounting contract of the sharded engine's mailbox plane: every
// token pushed (seed, handoff, report) is drained and processed exactly
// once — `shard.tokens_issued == shard.tokens_consumed` after every batch,
// at every shard count — and the mailbox-pressure histograms actually
// observe traffic (a conservation check that silently records nothing
// would vacuously pass). Pinned across S in {1,2,4,8} for all three walk
// modes, both through the registry and through last_run_stats().
#include <gtest/gtest.h>

#include <cstdint>

#include "core/parallel.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "shard/engine.hpp"
#include "shard/partition.hpp"

namespace overcount {
namespace {

constexpr std::uint64_t kSeed = 0xFEEDBEEF;
const std::uint32_t kShards[] = {1, 2, 4, 8};

Graph test_graph() {
  Rng rng(99);
  return balanced_random_graph(400, rng);
}

const Log2Histogram* find_histogram(const MetricsSnapshot& snap,
                                    const std::string& name) {
  for (const auto& [hist_name, h] : snap.histograms)
    if (hist_name == name) return &h;
  return nullptr;
}

void expect_tokens_conserved(const ShardedWalkEngine& engine,
                             const MetricsRegistry& registry) {
  const ShardRunStats& stats = engine.last_run_stats();
  EXPECT_GT(stats.tokens_issued, 0u);
  EXPECT_EQ(stats.tokens_issued, stats.tokens_consumed);

  const MetricsSnapshot snap = registry.snapshot();
  const std::uint64_t issued = snap.counter_or_zero("shard.tokens_issued");
  const std::uint64_t consumed = snap.counter_or_zero("shard.tokens_consumed");
  EXPECT_GT(issued, 0u);
  EXPECT_EQ(issued, consumed);

  // The mailbox-depth histogram observes every per-shard drain (zeros
  // included), so a batch that ran any superstep must have populated it.
  const Log2Histogram* depth = find_histogram(snap, "shard.mailbox_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_GT(depth->count, 0u);
  // Handoff latency is recorded once per thawed token whose freeze time was
  // stamped; with a registry attached that is every token, so the histogram
  // cannot stay empty when tokens moved.
  const Log2Histogram* latency =
      find_histogram(snap, "shard.handoff_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->count, 0u);
  EXPECT_LE(latency->count, consumed);
}

TEST(ShardMetrics, ToursConserveTokensAcrossShardCounts) {
  const Graph g = test_graph();
  for (const std::uint32_t shards : kShards) {
    SCOPED_TRACE(::testing::Message() << "S=" << shards);
    const ShardPlan plan = make_shard_plan(g, shards);
    const ShardedGraph sharded(g, plan);
    ParallelRunner runner(4, 8);
    MetricsRegistry registry;
    ShardedWalkEngine engine(sharded, runner, &registry);
    engine.run_tours(0, 48, [](NodeId) { return 1.0; }, kSeed);
    expect_tokens_conserved(engine, registry);
    // A multi-shard batch of this size must actually migrate walks: the
    // conservation identity is only interesting when handoffs happened.
    if (shards > 1) {
      EXPECT_GT(engine.last_run_stats().handoffs, 0u);
    }
  }
}

TEST(ShardMetrics, SamplesConserveTokensAcrossShardCounts) {
  const Graph g = test_graph();
  for (const std::uint32_t shards : kShards) {
    SCOPED_TRACE(::testing::Message() << "S=" << shards);
    const ShardPlan plan = make_shard_plan(g, shards);
    const ShardedGraph sharded(g, plan);
    ParallelRunner runner(2, 4);
    MetricsRegistry registry;
    ShardedWalkEngine engine(sharded, runner, &registry);
    engine.run_samples(0, 32, 25.0, kSeed);
    expect_tokens_conserved(engine, registry);
  }
}

TEST(ShardMetrics, ScTrialsConserveTokensAcrossShardCounts) {
  const Graph g = test_graph();
  for (const std::uint32_t shards : kShards) {
    SCOPED_TRACE(::testing::Message() << "S=" << shards);
    const ShardPlan plan = make_shard_plan(g, shards);
    const ShardedGraph sharded(g, plan);
    ParallelRunner runner(2, 4);
    MetricsRegistry registry;
    ShardedWalkEngine engine(sharded, runner, &registry);
    engine.run_sc_trials(0, 4, 20.0, 3, kSeed);
    expect_tokens_conserved(engine, registry);
    // With multiple shards, S&C pushes report tokens home on top of
    // seeds/handoffs; conservation must hold for those too.
    if (shards > 1) {
      EXPECT_GT(engine.last_run_stats().reports, 0u);
    }
  }
}

TEST(ShardMetrics, BackToBackBatchesKeepConservationCumulative) {
  const Graph g = test_graph();
  const ShardPlan plan = make_shard_plan(g, 4);
  const ShardedGraph sharded(g, plan);
  ParallelRunner runner(4, 8);
  MetricsRegistry registry;
  ShardedWalkEngine engine(sharded, runner, &registry);
  engine.run_tours(0, 24, [](NodeId) { return 1.0; }, kSeed);
  engine.run_samples(0, 16, 25.0, kSeed + 1);
  engine.run_tours(0, 24, [](NodeId) { return 1.0; }, kSeed + 2);
  // Registry counters accumulate across batches; the identity must survive
  // mixing modes on one engine.
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or_zero("shard.tokens_issued"),
            snap.counter_or_zero("shard.tokens_consumed"));
  // last_run_stats() is per-batch: the final tour batch balances on its own.
  const ShardRunStats& stats = engine.last_run_stats();
  EXPECT_EQ(stats.tokens_issued, stats.tokens_consumed);
  EXPECT_EQ(stats.walks, 24u);
}

}  // namespace
}  // namespace overcount

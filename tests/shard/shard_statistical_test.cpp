// Distributional tests for STITCHED sharded walks. Splicing precomputed
// segments changes which Rng stream supplies each draw (per-node segment
// streams instead of the walk's own), so stitched runs are not bit-identical
// to the scalar path — the correctness claim is instead that the walk LAW is
// untouched: uniform neighbour choice and Exp(d_v) sojourns, per degree
// class. Same harness as tests/core/kernel_statistical_test.cpp, on
// K_{5,11} (degree classes 11 and 5, both non-powers-of-two, so modulo bias
// in segment generation cannot hide), but driving the walks through a
// 4-shard engine with stitching enabled — on this graph almost every node
// is a boundary node, so segments supply the bulk of the steps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/generators.hpp"
#include "runtime/parallel_runner.hpp"
#include "shard/engine.hpp"
#include "shard/partition.hpp"
#include "util/tests.hpp"

namespace overcount {
namespace {

/// Records one walk's full trajectory (see kernel_statistical_test.cpp):
/// sojourns[i] was spent at nodes[i]; each walk's last sojourn is truncated
/// by the dying timer.
struct TraceProbe {
  static constexpr bool enabled = true;
  std::vector<std::uint64_t>* nodes;
  std::vector<double>* sojourns;
  void walk_begin(std::uint64_t origin) { nodes->push_back(origin); }
  void on_visit(std::uint64_t node) { nodes->push_back(node); }
  void on_sojourn(double dt) { sojourns->push_back(dt); }
  void on_reject() {}
  void on_collision(std::uint64_t) {}
  void tour_end(std::uint64_t, bool) {}
  void sample_end(std::uint64_t) {}
};

static_assert(WalkProbe<TraceProbe>);

constexpr std::size_t kLeft = 5;    // nodes 0..4, degree 11
constexpr std::size_t kRight = 11;  // nodes 5..15, degree 5
constexpr std::size_t kWalks = 600;
constexpr double kTimer = 8.0;
constexpr std::uint64_t kSeed = 0x5EEDC0DE;
constexpr double kAlpha = 1e-3;
constexpr std::uint32_t kShards = 4;

struct Traces {
  std::vector<std::vector<std::uint64_t>> nodes;
  std::vector<std::vector<double>> sojourns;
};

/// Runs `walks` CTRW sampling walks through a stitched 4-shard engine and
/// returns every trajectory plus the engine's run stats.
Traces run_stitched_traces(const Graph& g, NodeId origin, std::size_t walks,
                           double timer, std::uint64_t stitch_seed,
                           ShardRunStats* stats_out) {
  Traces traces;
  traces.nodes.resize(walks);
  traces.sojourns.resize(walks);
  std::vector<TraceProbe> probes;
  probes.reserve(walks);
  for (std::size_t i = 0; i < walks; ++i)
    probes.push_back({&traces.nodes[i], &traces.sojourns[i]});

  const ShardPlan plan = make_shard_plan(g, kShards);
  const ShardedGraph sharded(g, plan);
  StitchConfig cfg;
  cfg.seed = stitch_seed;
  SegmentStore store(sharded, cfg);
  ParallelRunner runner(4);
  ShardedWalkEngine engine(sharded, runner);
  engine.enable_stitching(store);
  engine.run_samples(origin, walks, timer, kSeed,
                     std::span<TraceProbe>(probes));
  *stats_out = engine.last_run_stats();
  return traces;
}

std::size_t neighbor_rank(const Graph& g, NodeId u, NodeId v) {
  const auto nbrs = g.neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  EXPECT_TRUE(it != nbrs.end() && *it == v);
  return static_cast<std::size_t>(it - nbrs.begin());
}

TEST(ShardStatistical, StitchedNeighborChoiceUniformPerDegreeClass) {
  const Graph g = complete_bipartite(kLeft, kRight);
  ShardRunStats stats;
  const auto traces =
      run_stitched_traces(g, 0, kWalks, kTimer, 0xB0047, &stats);
  // The fast path must actually carry the walks, or this test would pass
  // vacuously on the token path's (already bit-verified) draws.
  ASSERT_GT(stats.stitches, 0u);
  ASSERT_GT(stats.stitch_steps, stats.total_steps / 2);

  std::vector<std::size_t> left_ranks(kRight, 0), right_ranks(kLeft, 0);
  for (const auto& walk : traces.nodes) {
    for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
      const auto u = static_cast<NodeId>(walk[i]);
      const auto v = static_cast<NodeId>(walk[i + 1]);
      if (u < kLeft)
        ++left_ranks[neighbor_rank(g, u, v)];
      else
        ++right_ranks[neighbor_rank(g, u, v)];
    }
  }
  const std::size_t left_total =
      std::accumulate(left_ranks.begin(), left_ranks.end(), std::size_t{0});
  const std::size_t right_total =
      std::accumulate(right_ranks.begin(), right_ranks.end(), std::size_t{0});
  ASSERT_GT(left_total, 5000u);
  ASSERT_GT(right_total, 5000u);

  const auto left = chi_square_uniform(left_ranks);
  EXPECT_GT(left.p_value, kAlpha)
      << "degree-11 class: chi2=" << left.statistic << " over " << left_total
      << " transitions";
  const auto right = chi_square_uniform(right_ranks);
  EXPECT_GT(right.p_value, kAlpha)
      << "degree-5 class: chi2=" << right.statistic << " over " << right_total
      << " transitions";
}

TEST(ShardStatistical, StitchedSojournsExponentialPerDegreeClass) {
  const Graph g = complete_bipartite(kLeft, kRight);
  ShardRunStats stats;
  const auto traces =
      run_stitched_traces(g, 0, kWalks, kTimer, 0xB0048, &stats);
  ASSERT_GT(stats.stitches, 0u);

  // Drop each walk's final sojourn: the probe records min(sojourn,
  // remaining) and the last one was clipped by the timer.
  std::vector<double> deg11, deg5;
  for (std::size_t w = 0; w < traces.nodes.size(); ++w) {
    const auto& nodes = traces.nodes[w];
    const auto& sojourns = traces.sojourns[w];
    ASSERT_EQ(nodes.size(), sojourns.size());
    for (std::size_t i = 0; i + 1 < sojourns.size(); ++i) {
      if (nodes[i] < kLeft)
        deg11.push_back(sojourns[i]);
      else
        deg5.push_back(sojourns[i]);
    }
  }
  ASSERT_GT(deg11.size(), 5000u);
  ASSERT_GT(deg5.size(), 5000u);

  const auto ks11 =
      ks_test(deg11, [](double x) { return 1.0 - std::exp(-11.0 * x); });
  EXPECT_GT(ks11.p_value, kAlpha)
      << "degree-11 sojourns: D=" << ks11.statistic << " n=" << deg11.size();
  const auto ks5 =
      ks_test(deg5, [](double x) { return 1.0 - std::exp(-5.0 * x); });
  EXPECT_GT(ks5.p_value, kAlpha)
      << "degree-5 sojourns: D=" << ks5.statistic << " n=" << deg5.size();
}

TEST(ShardStatistical, StitchedToursRemainUnbiasedSizeEstimates) {
  // Tours consume only the node sequence of each segment; the estimator's
  // unbiasedness (Proposition 1) needs nothing beyond the walk law, so
  // stitched tour batches must still centre on N = 16.
  const Graph g = complete_bipartite(kLeft, kRight);
  const ShardPlan plan = make_shard_plan(g, kShards);
  const ShardedGraph sharded(g, plan);
  StitchConfig cfg;
  cfg.seed = 0xB0049;
  SegmentStore store(sharded, cfg);
  ParallelRunner runner(4);
  ShardedWalkEngine engine(sharded, runner);
  engine.enable_stitching(store);

  const std::size_t m = 400;
  const TourBatch batch =
      engine.run_tours(0, m, [](NodeId) { return 1.0; }, kSeed);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.completed, m);
  EXPECT_GT(engine.last_run_stats().stitches, 0u);
  const double n = static_cast<double>(kLeft + kRight);
  EXPECT_NEAR(batch.mean(), n, 0.3 * n)
      << "stitched tour mean drifted from N=" << n;
}

}  // namespace
}  // namespace overcount

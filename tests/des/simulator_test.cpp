#include "des/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace overcount {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_after(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), precondition_error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, CancelUnknownIdIsNoOp) {
  Simulator sim;
  sim.cancel(12345);
  bool fired = false;
  sim.schedule_at(1.0, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  const auto executed = sim.run_until(2.5);
  EXPECT_EQ(executed, 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunWithEventCapStopsEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(static_cast<double>(i), [&] { ++count; });
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(sim.empty());
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

TEST(Simulator, EmptyAccountsForCancellations) {
  Simulator sim;
  const auto id = sim.schedule_at(1.0, [] {});
  EXPECT_FALSE(sim.empty());
  sim.cancel(id);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RejectsEmptyAction) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, Simulator::Action{}),
               precondition_error);
}

}  // namespace
}  // namespace overcount

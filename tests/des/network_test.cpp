#include "des/network.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.hpp"

namespace overcount {
namespace {

struct Delivery {
  NodeId to;
  NodeId from;
  std::string body;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : graph_(ring(6)), net_(sim_, graph_, {1.0, 0.0}, 0.0, Rng(1)) {
    net_.set_handler([this](NodeId to, NodeId from, const std::any& p) {
      deliveries_.push_back({to, from, std::any_cast<std::string>(p)});
    });
  }

  Simulator sim_;
  DynamicGraph graph_;
  Network net_;
  std::vector<Delivery> deliveries_;
};

TEST_F(NetworkTest, DeliversAfterLatency) {
  net_.send(0, 1, std::string("hello"));
  EXPECT_TRUE(deliveries_.empty());
  sim_.run();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].to, 1u);
  EXPECT_EQ(deliveries_[0].from, 0u);
  EXPECT_EQ(deliveries_[0].body, "hello");
  EXPECT_DOUBLE_EQ(sim_.now(), 1.0);
  EXPECT_EQ(net_.messages_sent(), 1u);
  EXPECT_EQ(net_.messages_delivered(), 1u);
}

TEST_F(NetworkTest, DeadRecipientDropsMessage) {
  graph_.remove_node(1);
  net_.send(0, 1, std::string("to the void"));
  sim_.run();
  EXPECT_TRUE(deliveries_.empty());
  EXPECT_EQ(net_.messages_sent(), 1u);
  EXPECT_EQ(net_.messages_lost(), 1u);
}

TEST_F(NetworkTest, RecipientDyingMidFlightDropsMessage) {
  net_.send(0, 1, std::string("late"));
  // Node 1 departs before the message lands.
  sim_.schedule_at(0.5, [this] { graph_.remove_node(1); });
  sim_.run();
  EXPECT_TRUE(deliveries_.empty());
  EXPECT_EQ(net_.messages_lost(), 1u);
}

TEST_F(NetworkTest, DeadSenderRejected) {
  graph_.remove_node(0);
  EXPECT_THROW(net_.send(0, 1, std::string("x")), precondition_error);
}

TEST(NetworkLoss, DropRateMatchesModel) {
  Simulator sim;
  DynamicGraph graph(complete(4));
  Network net(sim, graph, {0.1, 0.0}, 0.25, Rng(7));
  std::size_t delivered = 0;
  net.set_handler([&](NodeId, NodeId, const std::any&) { ++delivered; });
  const std::size_t sent = 20000;
  for (std::size_t i = 0; i < sent; ++i) net.send(0, 1, 0);
  sim.run();
  const double loss_rate =
      static_cast<double>(net.messages_lost()) / static_cast<double>(sent);
  EXPECT_NEAR(loss_rate, 0.25, 0.02);
  EXPECT_EQ(delivered, net.messages_delivered());
}

TEST(NetworkLatency, JitterStaysInRange) {
  Simulator sim;
  DynamicGraph graph(complete(3));
  Network net(sim, graph, {2.0, 1.0}, 0.0, Rng(9));
  std::vector<double> arrivals;
  net.set_handler([&](NodeId, NodeId, const std::any&) {
    arrivals.push_back(sim.now());
  });
  for (int i = 0; i < 1000; ++i) net.send(0, 1, 0);
  sim.run();
  ASSERT_EQ(arrivals.size(), 1000u);
  for (double t : arrivals) {
    EXPECT_GE(t, 2.0);
    EXPECT_LT(t, 3.0);
  }
}

TEST(Network, RejectsInvalidLossProbability) {
  Simulator sim;
  DynamicGraph graph(complete(3));
  EXPECT_THROW(Network(sim, graph, {1.0, 0.0}, 1.0, Rng(1)),
               precondition_error);
  EXPECT_THROW(Network(sim, graph, {1.0, 0.0}, -0.1, Rng(1)),
               precondition_error);
}

TEST(Network, DeterministicUnderFixedSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    DynamicGraph graph(ring(8));
    Network net(sim, graph, {1.0, 0.5}, 0.1, Rng(seed));
    std::vector<std::pair<NodeId, double>> log;
    net.set_handler([&](NodeId to, NodeId, const std::any&) {
      log.emplace_back(to, sim.now());
    });
    for (NodeId v = 0; v < 8; ++v) net.send(v, (v + 1) % 8, 0);
    sim.run();
    return log;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace overcount

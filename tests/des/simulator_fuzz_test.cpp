// Fuzz test: the event queue's execution order against a reference sort of
// the surviving (non-cancelled) events, under random interleavings of
// scheduling, cancelling, and stepping.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "des/simulator.hpp"
#include "util/rng.hpp"

namespace overcount {
namespace {

struct PlannedEvent {
  SimTime time;
  Simulator::EventId id;
  bool cancelled = false;
};

class SimulatorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorFuzz, ExecutionOrderMatchesReference) {
  Rng rng(GetParam());
  Simulator sim;
  std::vector<PlannedEvent> planned;
  std::vector<Simulator::EventId> executed;

  // Phase 1: random schedule/cancel interleaving (times >= current now).
  for (int op = 0; op < 1500; ++op) {
    const double roll = rng.uniform();
    if (roll < 0.65) {
      const SimTime t = sim.now() + rng.uniform() * 100.0;
      const auto id = sim.schedule_at(
          t, [&executed, &planned, idx = planned.size()]() {
            executed.push_back(planned[idx].id);
          });
      planned.push_back({t, id, false});
    } else if (roll < 0.85 && !planned.empty()) {
      auto& victim = planned[rng.uniform_below(planned.size())];
      const bool already_fired =
          std::find(executed.begin(), executed.end(), victim.id) !=
          executed.end();
      if (!victim.cancelled && !already_fired) {
        sim.cancel(victim.id);
        victim.cancelled = true;
      }
    } else {
      sim.step();  // interleave execution with scheduling
    }
  }
  sim.run();

  // Reference order: surviving events sorted by (time, id).
  std::vector<PlannedEvent> survivors;
  for (const auto& p : planned) {
    if (std::find(executed.begin(), executed.end(), p.id) !=
        executed.end())
      survivors.push_back(p);
  }
  std::sort(survivors.begin(), survivors.end(),
            [](const PlannedEvent& a, const PlannedEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.id < b.id;
            });
  // Every executed event must appear in the reference order... but events
  // executed during phase 1 interleave with later scheduling, so global
  // sorting only holds per execution prefix. The robust invariants:
  ASSERT_EQ(executed.size(), survivors.size());
  // 1. No cancelled event ever executed (cancel happens strictly before
  //    the event fires in this workload, except steps re-marked above).
  // 2. Execution times are non-decreasing.
  SimTime last = -1.0;
  for (const auto id : executed) {
    const auto it = std::find_if(
        planned.begin(), planned.end(),
        [id](const PlannedEvent& p) { return p.id == id; });
    ASSERT_NE(it, planned.end());
    ASSERT_GE(it->time, last);
    last = it->time;
  }
  // 3. Every non-cancelled event executed exactly once.
  for (const auto& p : planned) {
    const auto count = std::count(executed.begin(), executed.end(), p.id);
    if (p.cancelled) ASSERT_EQ(count, 0) << "cancelled event fired";
    else ASSERT_EQ(count, 1) << "event lost or duplicated";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorFuzz,
                         ::testing::Values(3, 17, 256, 4096));

TEST(SimulatorStress, ManyEventsDrainInOrder) {
  Simulator sim;
  Rng rng(5);
  std::vector<double> fired;
  for (int i = 0; i < 50000; ++i) {
    const SimTime t = rng.uniform() * 1000.0;
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 50000u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

}  // namespace
}  // namespace overcount

// Failure injection: network partitions via the partition predicate, and
// protocol behaviour across a split-and-heal cycle.
#include <gtest/gtest.h>

#include <optional>

#include "des/network.hpp"
#include "graph/generators.hpp"
#include "protocols/random_tour_protocol.hpp"

namespace overcount {
namespace {

TEST(Partition, MessagesAcrossTheCutAreDropped) {
  Simulator sim;
  DynamicGraph graph(complete(8));
  Network net(sim, graph, {1.0, 0.0}, 0.0, Rng(1));
  std::size_t delivered = 0;
  net.set_handler([&](NodeId, NodeId, const std::any&) { ++delivered; });
  // Partition: nodes < 4 vs nodes >= 4.
  net.set_partition([](NodeId from, NodeId to) {
    return (from < 4) != (to < 4);
  });
  net.send(0, 1, 0);  // same side
  net.send(0, 5, 0);  // across
  net.send(6, 2, 0);  // across
  sim.run();
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(net.messages_lost(), 2u);
}

TEST(Partition, HealingRestoresDelivery) {
  Simulator sim;
  DynamicGraph graph(complete(6));
  Network net(sim, graph, {1.0, 0.0}, 0.0, Rng(2));
  std::size_t delivered = 0;
  net.set_handler([&](NodeId, NodeId, const std::any&) { ++delivered; });
  net.set_partition([](NodeId from, NodeId to) {
    return (from < 3) != (to < 3);
  });
  net.send(0, 4, 0);
  sim.run();
  EXPECT_EQ(delivered, 0u);
  net.set_partition(nullptr);
  net.send(0, 4, 0);
  sim.run();
  EXPECT_EQ(delivered, 1u);
}

TEST(Partition, RandomTourSurvivesSplitAndHeal) {
  // A tour launched before a partition either finishes on the initiator's
  // side or its probe dies at the cut; the timeout relaunches it, and once
  // the partition heals a relaunch completes.
  Rng rng(3);
  Simulator sim;
  DynamicGraph graph(complete(12));
  Network net(sim, graph, {1.0, 0.0}, 0.0, rng.split());
  RandomTourProtocol proto(net, rng.split());
  proto.set_timeout_policy(4.0, 100.0);

  // Cut after t = 5, heal at t = 1000.
  net.set_partition([&sim](NodeId from, NodeId to) {
    if (sim.now() < 5.0 || sim.now() > 1000.0) return false;
    return (from < 6) != (to < 6);
  });

  std::optional<RandomTourProtocol::Result> result;
  int completed = 0;
  std::function<void(const RandomTourProtocol::Result&)> on_done =
      [&](const RandomTourProtocol::Result& r) {
        result = r;
        if (++completed < 25) proto.start(0, on_done);
      };
  proto.start(0, on_done);
  sim.run();
  EXPECT_EQ(completed, 25);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->estimate, 0.0);
}

TEST(Partition, AccountingStillCountsSends) {
  Simulator sim;
  DynamicGraph graph(ring(4));
  Network net(sim, graph, {1.0, 0.0}, 0.0, Rng(4));
  net.set_handler([](NodeId, NodeId, const std::any&) {});
  net.set_partition([](NodeId, NodeId) { return true; });  // total blackout
  for (int i = 0; i < 10; ++i) net.send(0, 1, 0);
  sim.run();
  EXPECT_EQ(net.messages_sent(), 10u);
  EXPECT_EQ(net.messages_delivered(), 0u);
}

}  // namespace
}  // namespace overcount

// Shared fixtures for the test suites: a catalogue of named graph families
// used by the TEST_P property sweeps.
#pragma once

#include <functional>
#include <ostream>
#include <string>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace overcount::testing {

struct GraphCase {
  std::string name;
  std::function<Graph(Rng&)> make;
  std::size_t expected_nodes = 0;
};

inline std::ostream& operator<<(std::ostream& os, const GraphCase& c) {
  return os << c.name;
}

/// Families used by the estimator property sweeps: connected, varied
/// expansion and degree heterogeneity, small enough for statistical tests.
inline std::vector<GraphCase> estimator_graph_cases() {
  return {
      {"complete_32", [](Rng&) { return complete(32); }, 32},
      {"ring_64", [](Rng&) { return ring(64); }, 64},
      {"star_50", [](Rng&) { return star(50); }, 50},
      {"grid_8x8", [](Rng&) { return grid_2d(8, 8); }, 64},
      {"torus_6x6", [](Rng&) { return grid_2d(6, 6, true); }, 36},
      {"balanced_200",
       [](Rng& rng) { return balanced_random_graph(200, rng); }, 200},
      {"scale_free_200",
       [](Rng& rng) { return barabasi_albert(200, 3, rng); }, 200},
      {"k_out_150", [](Rng& rng) { return k_out_graph(150, 3, rng); }, 150},
      {"er_gnp_150",
       [](Rng& rng) { return erdos_renyi_gnp(150, 0.05, rng); }, 150},
      {"bipartite_regular_30",
       [](Rng& rng) { return bipartite_regular(30, 4, rng); }, 60},
  };
}

/// Small graphs with exactly known spectra/conductance.
inline std::vector<GraphCase> exact_graph_cases() {
  return {
      {"complete_8", [](Rng&) { return complete(8); }, 8},
      {"ring_10", [](Rng&) { return ring(10); }, 10},
      {"star_9", [](Rng&) { return star(9); }, 9},
      {"path_8", [](Rng&) { return path_graph(8); }, 8},
      {"grid_3x4", [](Rng&) { return grid_2d(3, 4); }, 12},
      {"complete_bipartite_3_5",
       [](Rng&) { return complete_bipartite(3, 5); }, 8},
  };
}

}  // namespace overcount::testing

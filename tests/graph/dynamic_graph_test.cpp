#include "graph/dynamic_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.hpp"

namespace overcount {
namespace {

TEST(DynamicGraph, CopiesStaticGraph) {
  Rng rng(1);
  const Graph g = balanced_random_graph(100, rng);
  const DynamicGraph d(g);
  EXPECT_EQ(d.num_alive(), g.num_nodes());
  EXPECT_EQ(d.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(d.alive(v));
    EXPECT_EQ(d.degree(v), g.degree(v));
  }
  EXPECT_TRUE(d.check_invariants());
}

TEST(DynamicGraph, AddNodeWithTargets) {
  DynamicGraph d(ring(5));
  const std::vector<NodeId> targets{0, 2};
  const NodeId v = d.add_node(targets);
  EXPECT_EQ(v, 5u);
  EXPECT_EQ(d.num_alive(), 6u);
  EXPECT_EQ(d.degree(v), 2u);
  EXPECT_TRUE(d.has_edge(v, 0));
  EXPECT_TRUE(d.has_edge(v, 2));
  EXPECT_TRUE(d.check_invariants());
}

TEST(DynamicGraph, AddIsolatedNode) {
  DynamicGraph d(ring(4));
  const NodeId v = d.add_node({});
  EXPECT_EQ(d.degree(v), 0u);
  EXPECT_TRUE(d.alive(v));
  EXPECT_TRUE(d.check_invariants());
}

TEST(DynamicGraph, VersionBumpsOnEveryMutation) {
  DynamicGraph d(ring(5));
  EXPECT_EQ(d.version(), 0u);  // construction is version 0

  std::uint64_t last = d.version();
  const NodeId v = d.add_node(std::vector<NodeId>{0, 2});
  EXPECT_GT(d.version(), last);  // node + 2 edges, strictly monotone
  last = d.version();

  d.add_edge(v, 3);
  EXPECT_EQ(d.version(), last + 1);
  last = d.version();

  d.remove_edge(v, 3);
  EXPECT_EQ(d.version(), last + 1);
  last = d.version();

  d.remove_node(v);
  EXPECT_EQ(d.version(), last + 1);
  last = d.version();

  // Read-only operations never bump.
  (void)d.has_edge(0, 1);
  (void)d.component_size(0);
  (void)d.snapshot();
  (void)d.check_invariants();
  EXPECT_EQ(d.version(), last);
}

TEST(DynamicGraph, RemoveNodeTakesEdges) {
  DynamicGraph d(complete(4));
  d.remove_node(2);
  EXPECT_FALSE(d.alive(2));
  EXPECT_EQ(d.num_alive(), 3u);
  EXPECT_EQ(d.num_edges(), 3u);  // K4 minus a node = K3
  EXPECT_EQ(d.degree(2), 0u);
  for (NodeId v : {0u, 1u, 3u}) EXPECT_EQ(d.degree(v), 2u);
  EXPECT_TRUE(d.check_invariants());
}

TEST(DynamicGraph, RemoveRejectsDeadNode) {
  DynamicGraph d(ring(4));
  d.remove_node(1);
  EXPECT_THROW(d.remove_node(1), precondition_error);
}

TEST(DynamicGraph, SlotsNeverReused) {
  DynamicGraph d(ring(4));
  d.remove_node(0);
  const NodeId v = d.add_node({});
  EXPECT_EQ(v, 4u);  // not the freed slot 0
  EXPECT_FALSE(d.alive(0));
}

TEST(DynamicGraph, EdgeAddRemove) {
  DynamicGraph d(path_graph(4));
  d.add_edge(0, 3);
  EXPECT_TRUE(d.has_edge(0, 3));
  EXPECT_THROW(d.add_edge(0, 3), precondition_error);
  d.remove_edge(0, 3);
  EXPECT_FALSE(d.has_edge(0, 3));
  EXPECT_THROW(d.remove_edge(0, 3), precondition_error);
  EXPECT_TRUE(d.check_invariants());
}

TEST(DynamicGraph, RandomAliveNodeOnlyReturnsAlive) {
  Rng rng(3);
  DynamicGraph d(complete(10));
  for (NodeId v = 0; v < 5; ++v) d.remove_node(v);
  for (int i = 0; i < 1000; ++i) {
    const NodeId v = d.random_alive_node(rng);
    EXPECT_TRUE(d.alive(v));
    EXPECT_GE(v, 5u);
  }
}

TEST(DynamicGraph, ComponentSizeAfterSplit) {
  // Path 0-1-2-3-4; removing 2 splits into {0,1} and {3,4}.
  DynamicGraph d(path_graph(5));
  d.remove_node(2);
  EXPECT_EQ(d.component_size(0), 2u);
  EXPECT_EQ(d.component_size(4), 2u);
  const auto comp = d.component_nodes(3);
  EXPECT_EQ(comp.size(), 2u);
  EXPECT_NE(std::find(comp.begin(), comp.end(), 4u), comp.end());
}

TEST(DynamicGraph, SnapshotCompactsIds) {
  DynamicGraph d(ring(6));
  d.remove_node(0);
  d.remove_node(3);
  std::vector<NodeId> map;
  const Graph snap = d.snapshot(&map);
  EXPECT_EQ(snap.num_nodes(), 4u);
  EXPECT_EQ(snap.num_edges(), d.num_edges());
  // Edge 1-2 survives; check it maps over.
  EXPECT_TRUE(snap.has_edge(map[1], map[2]));
}

TEST(DynamicGraph, RandomChurnPreservesInvariants) {
  Rng rng(77);
  DynamicGraph d(balanced_random_graph(200, rng));
  for (int op = 0; op < 500; ++op) {
    const double roll = rng.uniform();
    if (roll < 0.45 && d.num_alive() > 10) {
      d.remove_node(d.random_alive_node(rng));
    } else {
      // Join with up to 3 random alive targets.
      std::vector<NodeId> targets;
      for (int t = 0; t < 3; ++t) {
        const NodeId cand = d.random_alive_node(rng);
        if (std::find(targets.begin(), targets.end(), cand) == targets.end())
          targets.push_back(cand);
      }
      d.add_node(targets);
    }
    ASSERT_TRUE(d.check_invariants()) << "after op " << op;
  }
}

TEST(DynamicGraph, AddNodeRejectsDeadTarget) {
  DynamicGraph d(ring(4));
  d.remove_node(1);
  const std::vector<NodeId> targets{1};
  EXPECT_THROW(d.add_node(targets), precondition_error);
}

}  // namespace
}  // namespace overcount

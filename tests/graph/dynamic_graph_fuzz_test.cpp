// Differential test: DynamicGraph against a trivially correct reference
// model (map of sets) under long random operation sequences.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"

namespace overcount {
namespace {

class ReferenceGraph {
 public:
  NodeId add_node(const std::vector<NodeId>& targets) {
    const NodeId v = next_id_++;
    adjacency_[v];
    for (NodeId t : targets) {
      adjacency_[v].insert(t);
      adjacency_[t].insert(v);
    }
    return v;
  }

  void remove_node(NodeId v) {
    for (NodeId u : adjacency_[v]) adjacency_[u].erase(v);
    adjacency_.erase(v);
  }

  void add_edge(NodeId u, NodeId v) {
    adjacency_[u].insert(v);
    adjacency_[v].insert(u);
  }

  void remove_edge(NodeId u, NodeId v) {
    adjacency_[u].erase(v);
    adjacency_[v].erase(u);
  }

  bool alive(NodeId v) const { return adjacency_.contains(v); }
  std::size_t num_alive() const { return adjacency_.size(); }
  std::size_t degree(NodeId v) const { return adjacency_.at(v).size(); }
  bool has_edge(NodeId u, NodeId v) const {
    return alive(u) && adjacency_.at(u).contains(v);
  }
  std::size_t num_edges() const {
    std::size_t total = 0;
    for (const auto& [v, nbrs] : adjacency_) total += nbrs.size();
    return total / 2;
  }
  std::vector<NodeId> alive_ids() const {
    std::vector<NodeId> out;
    for (const auto& [v, nbrs] : adjacency_) out.push_back(v);
    return out;
  }

  void seed(const Graph& g) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) adjacency_[v];
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      for (NodeId u : g.neighbors(v))
        if (v < u) add_edge(v, u);
    next_id_ = static_cast<NodeId>(g.num_nodes());
  }

 private:
  std::map<NodeId, std::set<NodeId>> adjacency_;
  NodeId next_id_ = 0;
};

class DynamicGraphFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicGraphFuzz, MatchesReferenceModel) {
  Rng rng(GetParam());
  const Graph seed_graph = erdos_renyi_gnm(40, 100, rng);
  DynamicGraph dut(seed_graph);
  ReferenceGraph ref;
  ref.seed(seed_graph);

  for (int op = 0; op < 2000; ++op) {
    const auto alive = ref.alive_ids();
    const double roll = rng.uniform();
    if (roll < 0.25 && alive.size() > 5) {
      const NodeId victim = alive[rng.uniform_below(alive.size())];
      dut.remove_node(victim);
      ref.remove_node(victim);
    } else if (roll < 0.5) {
      // Join with up to 3 distinct alive targets.
      std::vector<NodeId> targets;
      for (int t = 0; t < 3 && !alive.empty(); ++t) {
        const NodeId cand = alive[rng.uniform_below(alive.size())];
        if (std::find(targets.begin(), targets.end(), cand) ==
            targets.end())
          targets.push_back(cand);
      }
      const NodeId a = dut.add_node(targets);
      const NodeId b = ref.add_node(targets);
      ASSERT_EQ(a, b);
    } else if (roll < 0.75 && alive.size() >= 2) {
      const NodeId u = alive[rng.uniform_below(alive.size())];
      const NodeId v = alive[rng.uniform_below(alive.size())];
      if (u != v && !ref.has_edge(u, v)) {
        dut.add_edge(u, v);
        ref.add_edge(u, v);
      }
    } else if (alive.size() >= 2) {
      const NodeId u = alive[rng.uniform_below(alive.size())];
      if (ref.degree(u) > 0) {
        // Remove a random incident edge.
        const auto nbrs = dut.neighbors(u);
        const NodeId v = nbrs[rng.uniform_below(nbrs.size())];
        dut.remove_edge(u, v);
        ref.remove_edge(u, v);
      }
    }

    // Cross-check the full visible state every few operations.
    if (op % 50 == 0) {
      ASSERT_EQ(dut.num_alive(), ref.num_alive());
      ASSERT_EQ(dut.num_edges(), ref.num_edges());
      for (NodeId v : ref.alive_ids()) {
        ASSERT_TRUE(dut.alive(v));
        ASSERT_EQ(dut.degree(v), ref.degree(v)) << "node " << v;
        for (NodeId u : dut.neighbors(v))
          ASSERT_TRUE(ref.has_edge(v, u));
      }
      ASSERT_TRUE(dut.check_invariants());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicGraphFuzz,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace overcount

#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/generators.hpp"

namespace overcount {
namespace {

bool graphs_equal(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges())
    return false;
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
      return false;
  }
  return true;
}

TEST(GraphIo, RoundTripThroughStreams) {
  Rng rng(1);
  const Graph g = balanced_random_graph(200, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph back = read_edge_list(ss);
  EXPECT_TRUE(graphs_equal(g, back));
}

TEST(GraphIo, RoundTripWithIsolatedNodes) {
  GraphBuilder b(5);
  b.add_edge(0, 3);
  const Graph g = b.build();
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph back = read_edge_list(ss);
  EXPECT_TRUE(graphs_equal(g, back));
  EXPECT_EQ(back.degree(4), 0u);
}

TEST(GraphIo, CommentsAndBlankLinesIgnored) {
  std::stringstream ss("# header comment\n\nnodes 3\n# mid comment\n0 1\n\n1 2\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::stringstream ss("0 1\n");  // no header
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);
  }
  {
    std::stringstream ss("nodes 2\n0 5\n");  // out of range
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);
  }
  {
    std::stringstream ss("nodes 3\n1 1\n");  // self loop
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);
  }
  {
    std::stringstream ss("nodes 3\n0 1\n1 0\n");  // duplicate
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);
  }
  {
    std::stringstream ss("vertices 3\n");  // wrong keyword
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);
  }
}

TEST(GraphIo, FileRoundTrip) {
  Rng rng(2);
  const Graph g = erdos_renyi_gnm(50, 120, rng);
  const std::string path = ::testing::TempDir() + "/overcount_io_test.txt";
  save_graph(path, g);
  const Graph back = load_graph(path);
  EXPECT_TRUE(graphs_equal(g, back));
  std::remove(path.c_str());
}

TEST(GraphIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_graph("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

TEST(GraphIo, DotOutputContainsEdgesOnce) {
  const Graph g = ring(4);
  std::stringstream ss;
  write_dot(ss, g, "ring4");
  const std::string out = ss.str();
  EXPECT_NE(out.find("graph ring4 {"), std::string::npos);
  EXPECT_NE(out.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(out.find("0 -- 3;"), std::string::npos);
  EXPECT_EQ(out.find("1 -- 0;"), std::string::npos);
}

TEST(GraphIo, DotListsIsolatedNodes) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  std::stringstream ss;
  write_dot(ss, b.build());
  EXPECT_NE(ss.str().find("  2;"), std::string::npos);
}

}  // namespace
}  // namespace overcount

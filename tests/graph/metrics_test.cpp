#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace overcount {
namespace {

TEST(DegreeHistogram, CountsMatch) {
  const Graph g = star(6);  // hub degree 5, five leaves degree 1
  const auto hist = degree_histogram(g);
  ASSERT_EQ(hist.size(), 6u);
  EXPECT_EQ(hist[1], 5u);
  EXPECT_EQ(hist[5], 1u);
  EXPECT_EQ(hist[0], 0u);
}

TEST(PowerLawExponent, NearThreeForBarabasiAlbert) {
  Rng rng(1);
  const Graph g = barabasi_albert(20000, 3, rng);
  const double alpha = power_law_exponent(g, 5);
  // BA degree distribution ~ d^-3; the Hill estimator lands near 3.
  EXPECT_GT(alpha, 2.3);
  EXPECT_LT(alpha, 3.8);
}

TEST(PowerLawExponent, ZeroWhenTooFewQualify) {
  EXPECT_DOUBLE_EQ(power_law_exponent(ring(20), 5), 0.0);
}

TEST(Clustering, CompleteGraphIsOne) {
  const Graph g = complete(6);
  for (NodeId v = 0; v < 6; ++v)
    EXPECT_DOUBLE_EQ(local_clustering(g, v), 1.0);
  EXPECT_DOUBLE_EQ(average_clustering(g), 1.0);
}

TEST(Clustering, TreeIsZero) {
  EXPECT_DOUBLE_EQ(average_clustering(star(8)), 0.0);
  EXPECT_DOUBLE_EQ(average_clustering(path_graph(8)), 0.0);
}

TEST(Clustering, TriangleWithTail) {
  // 0-1-2 triangle + edge 2-3: c(0)=c(1)=1, c(2)=1/3, c(3)=0.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(local_clustering(g, 0), 1.0);
  EXPECT_NEAR(local_clustering(g, 2), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(local_clustering(g, 3), 0.0);
}

TEST(TriangleCount, KnownValues) {
  EXPECT_EQ(triangle_count(complete(5)), 10u);  // C(5,3)
  EXPECT_EQ(triangle_count(ring(6)), 0u);
  EXPECT_EQ(triangle_count(star(10)), 0u);
  EXPECT_EQ(triangle_count(complete_bipartite(3, 4)), 0u);
}

TEST(DistanceStats, PathGraphExhaustive) {
  Rng rng(2);
  const Graph g = path_graph(5);
  const auto stats = distance_stats(g, 5, rng);  // exhaustive
  EXPECT_EQ(stats.diameter, 4u);
  EXPECT_EQ(stats.sources, 5u);
  // Sum over ordered pairs of |i-j| = 2*(4*1+3*2+2*3+1*4) = 40; pairs = 20.
  EXPECT_NEAR(stats.average, 2.0, 1e-12);
}

TEST(DistanceStats, SampledOnExpanderIsLogarithmic) {
  Rng rng(3);
  const Graph g = k_out_graph(5000, 3, rng);
  const auto stats = distance_stats(g, 8, rng);
  EXPECT_LT(stats.average, 8.0);
  EXPECT_GE(stats.diameter, 4u);
}

TEST(Assortativity, StarIsFullyDisassortative) {
  EXPECT_NEAR(degree_assortativity(star(10)), -1.0, 1e-9);
}

TEST(Assortativity, RegularGraphReportsZero) {
  EXPECT_DOUBLE_EQ(degree_assortativity(ring(10)), 0.0);
  EXPECT_DOUBLE_EQ(degree_assortativity(complete(6)), 0.0);
}

TEST(Assortativity, BarabasiAlbertIsMildlyDisassortative) {
  Rng rng(4);
  const Graph g = barabasi_albert(5000, 3, rng);
  const double r = degree_assortativity(g);
  EXPECT_LT(r, 0.05);
  EXPECT_GT(r, -0.5);
}

TEST(Metrics, PreconditionsEnforced) {
  Rng rng(5);
  const Graph empty_edges = [] {
    GraphBuilder b(3);
    return b.build();
  }();
  EXPECT_THROW(degree_assortativity(empty_edges), precondition_error);
  EXPECT_THROW(power_law_exponent(ring(5), 0), precondition_error);
}

}  // namespace
}  // namespace overcount

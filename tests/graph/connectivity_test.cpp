#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace overcount {
namespace {

Graph two_triangles() {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(3, 5);
  return b.build();
}

TEST(ConnectedComponents, SingleComponent) {
  const auto labels = connected_components(ring(10));
  EXPECT_EQ(labels.num_components, 1u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(labels.label[v], 0u);
}

TEST(ConnectedComponents, TwoComponents) {
  const auto labels = connected_components(two_triangles());
  EXPECT_EQ(labels.num_components, 2u);
  EXPECT_EQ(labels.label[0], labels.label[2]);
  EXPECT_NE(labels.label[0], labels.label[3]);
}

TEST(ConnectedComponents, IsolatedNodesAreComponents) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const auto labels = connected_components(b.build());
  EXPECT_EQ(labels.num_components, 3u);
}

TEST(IsConnected, Cases) {
  EXPECT_TRUE(is_connected(complete(5)));
  EXPECT_FALSE(is_connected(two_triangles()));
  EXPECT_FALSE(is_connected(Graph{}));
}

TEST(ComponentSize, MatchesBfs) {
  const Graph g = two_triangles();
  EXPECT_EQ(component_size(g, 0), 3u);
  EXPECT_EQ(component_size(g, 4), 3u);
}

TEST(LargestComponent, ExtractsInducedSubgraph) {
  GraphBuilder b(7);
  b.add_edge(0, 1);  // small comp
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 2);
  b.add_edge(2, 4);  // big comp: 2,3,4,5 with 5 edges
  std::vector<NodeId> back;
  const Graph big = largest_component(b.build(), &back);
  EXPECT_EQ(big.num_nodes(), 4u);
  EXPECT_EQ(big.num_edges(), 5u);
  ASSERT_EQ(back.size(), 4u);
  EXPECT_EQ(back[0], 2u);  // original ids preserved in order
}

TEST(BfsDistances, PathDistances) {
  const auto dist = bfs_distances(path_graph(6), 0);
  for (std::size_t v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsDistances, UnreachableIsMax) {
  const auto dist = bfs_distances(two_triangles(), 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[4], std::numeric_limits<std::size_t>::max());
}

TEST(BfsDistances, TorusIsSymmetric) {
  const Graph g = grid_2d(5, 5, true);
  const auto dist = bfs_distances(g, 0);
  // Farthest point on a 5x5 torus is at distance 2+2.
  const auto furthest = *std::max_element(dist.begin(), dist.end());
  EXPECT_EQ(furthest, 4u);
}

}  // namespace
}  // namespace overcount

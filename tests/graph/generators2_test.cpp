// Tests for the second wave of overlay families: Watts-Strogatz small
// worlds and configuration-model regular graphs.
#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "spectral/laplacian.hpp"

namespace overcount {
namespace {

TEST(WattsStrogatz, BetaZeroIsTheRingLattice) {
  Rng rng(1);
  const Graph g = watts_strogatz(50, 4, 0.0, rng);
  EXPECT_EQ(g.num_edges(), 100u);
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(g.degree(v), 4u);
    EXPECT_TRUE(g.has_edge(v, (v + 1) % 50));
    EXPECT_TRUE(g.has_edge(v, (v + 2) % 50));
  }
}

TEST(WattsStrogatz, EdgeCountPreservedUnderRewiring) {
  Rng rng(2);
  for (double beta : {0.1, 0.5, 1.0}) {
    const Graph g = watts_strogatz(200, 6, beta, rng);
    // Rewiring can occasionally fail and fall back to (or drop) a lattice
    // edge; allow a tiny deficit.
    EXPECT_LE(g.num_edges(), 600u);
    EXPECT_GE(g.num_edges(), 590u);
  }
}

TEST(WattsStrogatz, SmallWorldRegime) {
  // beta = 0.1: clustering stays near the lattice's, distances collapse.
  Rng rng(3);
  const Graph lattice = watts_strogatz(600, 6, 0.0, rng);
  const Graph small_world = watts_strogatz(600, 6, 0.1, rng);
  EXPECT_GT(average_clustering(small_world),
            0.3 * average_clustering(lattice));
  Rng d_rng(4);
  const auto lat_dist = distance_stats(largest_component(lattice), 6, d_rng);
  const auto sw_dist =
      distance_stats(largest_component(small_world), 6, d_rng);
  EXPECT_LT(sw_dist.average, 0.4 * lat_dist.average);
}

TEST(WattsStrogatz, RewiringImprovesSpectralGap) {
  Rng rng(5);
  const Graph lattice = watts_strogatz(400, 4, 0.0, rng);
  const Graph rewired = watts_strogatz(400, 4, 0.3, rng);
  const Graph rewired_big = largest_component(rewired);
  EXPECT_GT(spectral_gap_lanczos(rewired_big, 150),
            3.0 * spectral_gap_lanczos(lattice, 150));
}

TEST(WattsStrogatz, PreconditionsEnforced) {
  Rng rng(6);
  EXPECT_THROW(watts_strogatz(50, 3, 0.1, rng), precondition_error);   // odd k
  EXPECT_THROW(watts_strogatz(50, 0, 0.1, rng), precondition_error);
  EXPECT_THROW(watts_strogatz(50, 4, 1.5, rng), precondition_error);
  EXPECT_THROW(watts_strogatz(4, 4, 0.1, rng), precondition_error);    // k >= n-1
}

TEST(RandomRegular, ExactDegrees) {
  Rng rng(7);
  for (std::size_t d : {2u, 3u, 4u, 7u}) {
    const std::size_t n = d % 2 == 0 ? 101 : 100;  // keep n*d even
    const Graph g = random_regular(n, d, rng);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(g.num_edges(), n * d / 2);
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), d) << "d=" << d;
  }
}

TEST(RandomRegular, CubicGraphsAreExpanders) {
  // Random 3-regular graphs are expanders whp: gap bounded away from 0.
  Rng rng(8);
  const Graph g = random_regular(500, 3, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GT(spectral_gap_lanczos(g, 150), 0.1);
}

TEST(RandomRegular, PreconditionsEnforced) {
  Rng rng(9);
  EXPECT_THROW(random_regular(5, 3, rng), precondition_error);   // n*d odd
  EXPECT_THROW(random_regular(4, 4, rng), precondition_error);   // d >= n
  EXPECT_THROW(random_regular(10, 0, rng), precondition_error);
}

TEST(RandomRegular, DeterministicUnderSeed) {
  Rng a(10);
  Rng b(10);
  const Graph ga = random_regular(60, 4, a);
  const Graph gb = random_regular(60, 4, b);
  for (NodeId v = 0; v < 60; ++v) {
    const auto na = ga.neighbors(v);
    const auto nb = gb.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

}  // namespace
}  // namespace overcount

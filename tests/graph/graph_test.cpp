#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace overcount {
namespace {

TEST(GraphBuilder, BuildsTriangle) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.total_degree(), 6u);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(1, 1), precondition_error);
}

TEST(GraphBuilder, RejectsDuplicateEdge) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_THROW(b.add_edge(0, 1), precondition_error);
  EXPECT_THROW(b.add_edge(1, 0), precondition_error);
}

TEST(GraphBuilder, RejectsOutOfRange) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), precondition_error);
  EXPECT_THROW(b.add_edge(5, 0), precondition_error);
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  b.add_edge(2, 3);
  const Graph g2 = b.build();
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(g2.num_edges(), 2u);
}

TEST(Graph, NeighborsAreSorted) {
  GraphBuilder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(2, 1);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(Graph, EmptyGraphProperties) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_EQ(g.min_degree(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(Graph, IsolatedNodesAllowed) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_EQ(g.min_degree(), 0u);
  EXPECT_EQ(g.max_degree(), 1u);
  EXPECT_TRUE(g.neighbors(2).empty());
}

TEST(Graph, HasEdgePreconditions) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_THROW(g.has_edge(0, 2), precondition_error);
  EXPECT_THROW((void)g.degree(2), precondition_error);
  EXPECT_THROW((void)g.neighbors(7), precondition_error);
}

TEST(Graph, DegreeStatistics) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  const Graph g = b.build();  // star on 4 nodes
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.5);
}

}  // namespace
}  // namespace overcount

#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/connectivity.hpp"

namespace overcount {
namespace {

TEST(BalancedRandomGraph, DegreesWithinBounds) {
  Rng rng(1);
  const Graph g = balanced_random_graph(2000, rng);
  EXPECT_EQ(g.num_nodes(), 2000u);
  EXPECT_GE(g.min_degree(), 1u);
  EXPECT_LE(g.max_degree(), 10u);
}

TEST(BalancedRandomGraph, AverageDegreeMatchesPaper) {
  // Paper Section 5.1: "The resulting average degree is between 7 and 8."
  Rng rng(2);
  const Graph g = balanced_random_graph(5000, rng);
  EXPECT_GE(g.average_degree(), 6.5);
  EXPECT_LE(g.average_degree(), 8.5);
}

TEST(BalancedRandomGraph, CustomDegreeCapRespected) {
  Rng rng(3);
  const Graph g = balanced_random_graph(500, rng, 5);
  EXPECT_LE(g.max_degree(), 5u);
  EXPECT_GE(g.min_degree(), 1u);
}

TEST(BalancedRandomGraph, LargelyConnected) {
  Rng rng(4);
  const Graph g = balanced_random_graph(2000, rng);
  const Graph big = largest_component(g);
  EXPECT_GE(big.num_nodes(), g.num_nodes() * 99 / 100);
}

TEST(BarabasiAlbert, NodeAndEdgeCounts) {
  Rng rng(5);
  const std::size_t n = 1000;
  const std::size_t m = 3;
  const Graph g = barabasi_albert(n, m, rng);
  EXPECT_EQ(g.num_nodes(), n);
  // Seed clique of m+1 nodes has m(m+1)/2 edges; each later node adds m.
  EXPECT_EQ(g.num_edges(), m * (m + 1) / 2 + (n - m - 1) * m);
  EXPECT_TRUE(is_connected(g));
}

TEST(BarabasiAlbert, MinDegreeIsAttachment) {
  Rng rng(6);
  const Graph g = barabasi_albert(500, 4, rng);
  EXPECT_GE(g.min_degree(), 4u);
}

TEST(BarabasiAlbert, HeavyTailPresent) {
  Rng rng(7);
  const Graph g = barabasi_albert(3000, 3, rng);
  // A scale-free graph has hubs far above the average degree (~6).
  EXPECT_GE(g.max_degree(), 40u);
}

TEST(BarabasiAlbert, RejectsBadParameters) {
  Rng rng(8);
  EXPECT_THROW(barabasi_albert(3, 3, rng), precondition_error);
  EXPECT_THROW(barabasi_albert(10, 0, rng), precondition_error);
}

TEST(ErdosRenyiGnp, EdgeCountNearExpectation) {
  Rng rng(9);
  const std::size_t n = 1000;
  const double p = 0.01;
  const Graph g = erdos_renyi_gnp(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  const double sd = std::sqrt(expected * (1 - p));
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 6 * sd);
}

TEST(ErdosRenyiGnp, EdgeCasesEmptyAndComplete) {
  Rng rng(10);
  EXPECT_EQ(erdos_renyi_gnp(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi_gnp(50, 1.0, rng).num_edges(), 50u * 49 / 2);
}

TEST(ErdosRenyiGnm, ExactEdgeCount) {
  Rng rng(11);
  const Graph g = erdos_renyi_gnm(200, 700, rng);
  EXPECT_EQ(g.num_edges(), 700u);
  EXPECT_EQ(g.num_nodes(), 200u);
}

TEST(KOutGraph, DegreeAtLeastK) {
  Rng rng(12);
  const std::size_t k = 3;
  const Graph g = k_out_graph(500, k, rng);
  EXPECT_GE(g.min_degree(), k);
  // Average degree is below 2k only because of duplicate selections.
  EXPECT_LE(g.average_degree(), 2.0 * k + 0.5);
  EXPECT_TRUE(is_connected(g));
}

TEST(DeterministicFamilies, RingPathCompleteStar) {
  const Graph r = ring(10);
  EXPECT_EQ(r.num_edges(), 10u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(r.degree(v), 2u);

  const Graph p = path_graph(10);
  EXPECT_EQ(p.num_edges(), 9u);
  EXPECT_EQ(p.degree(0), 1u);
  EXPECT_EQ(p.degree(5), 2u);

  const Graph k = complete(7);
  EXPECT_EQ(k.num_edges(), 21u);
  EXPECT_EQ(k.min_degree(), 6u);

  const Graph s = star(8);
  EXPECT_EQ(s.degree(0), 7u);
  EXPECT_EQ(s.degree(3), 1u);
}

TEST(Grid2d, PlaneAndTorusDegrees) {
  const Graph plane = grid_2d(4, 5);
  EXPECT_EQ(plane.num_nodes(), 20u);
  EXPECT_EQ(plane.degree(0), 2u);        // corner
  EXPECT_EQ(plane.num_edges(), 4u * 4 + 5u * 3);

  const Graph torus = grid_2d(4, 5, true);
  for (NodeId v = 0; v < torus.num_nodes(); ++v)
    EXPECT_EQ(torus.degree(v), 4u);
  EXPECT_EQ(torus.num_edges(), 2u * 20);
}

TEST(CompleteBipartite, StructureCorrect) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(g.degree(u), 4u);
  for (NodeId v = 3; v < 7; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 3));
}

TEST(BipartiteRegular, IsRegularAndBipartite) {
  Rng rng(13);
  const std::size_t half = 50;
  const std::size_t d = 4;
  const Graph g = bipartite_regular(half, d, rng);
  EXPECT_EQ(g.num_nodes(), 2 * half);
  EXPECT_EQ(g.num_edges(), half * d);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), d);
  // All edges cross the bipartition.
  for (NodeId v = 0; v < half; ++v)
    for (NodeId u : g.neighbors(v)) EXPECT_GE(u, half);
}

TEST(BipartiteRegular, FullDegreeIsCompleteBipartite) {
  Rng rng(14);
  const Graph g = bipartite_regular(5, 5, rng);
  EXPECT_EQ(g.num_edges(), 25u);
}

TEST(RandomGeometric, EdgesRespectRadius) {
  Rng rng(15);
  const Graph g = random_geometric(300, 0.12, rng);
  EXPECT_EQ(g.num_nodes(), 300u);
  EXPECT_GT(g.num_edges(), 0u);
  // Expected edges ~ n^2/2 * pi r^2 (boundary effects lower it).
  const double expected = 300.0 * 299.0 / 2 * 3.14159 * 0.12 * 0.12;
  EXPECT_LT(static_cast<double>(g.num_edges()), 1.2 * expected);
  EXPECT_GT(static_cast<double>(g.num_edges()), 0.4 * expected);
}

TEST(Generators, PreconditionsEnforced) {
  Rng rng(16);
  EXPECT_THROW(ring(2), precondition_error);
  EXPECT_THROW(path_graph(1), precondition_error);
  EXPECT_THROW(complete(1), precondition_error);
  EXPECT_THROW(star(1), precondition_error);
  EXPECT_THROW(grid_2d(1, 5), precondition_error);
  EXPECT_THROW(k_out_graph(3, 3, rng), precondition_error);
  EXPECT_THROW(erdos_renyi_gnp(10, 1.5, rng), precondition_error);
  EXPECT_THROW(bipartite_regular(3, 4, rng), precondition_error);
  EXPECT_THROW(random_geometric(10, 0.0, rng), precondition_error);
}

class GeneratorReproducibility
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorReproducibility, SameSeedSameGraph) {
  Rng rng1(GetParam());
  Rng rng2(GetParam());
  const Graph a = balanced_random_graph(300, rng1);
  const Graph b = balanced_random_graph(300, rng2);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorReproducibility,
                         ::testing::Values(1, 42, 12345, 999999));

}  // namespace
}  // namespace overcount

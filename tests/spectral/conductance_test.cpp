#include "spectral/conductance.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"
#include "test_helpers.hpp"

namespace overcount {
namespace {

TEST(IsoperimetricExact, RingCutsInHalf) {
  // C_n: best cut is an arc of n/2 nodes with 2 crossing edges.
  const std::size_t n = 12;
  const auto cut = isoperimetric_exact(ring(n));
  EXPECT_NEAR(cut.expansion, 2.0 / (n / 2), 1e-12);
  EXPECT_EQ(cut.cut_edges, 2u);
  EXPECT_EQ(cut.side.size(), n / 2);
}

TEST(IsoperimetricExact, CompleteGraph) {
  // K_n: any cut S has |S| * (n - |S|) edges; expansion minimised at
  // |S| = floor(n/2), value n - floor(n/2) = ceil(n/2).
  const auto even = isoperimetric_exact(complete(8));
  EXPECT_NEAR(even.expansion, 4.0, 1e-12);
  const auto odd = isoperimetric_exact(complete(9));
  EXPECT_NEAR(odd.expansion, 5.0, 1e-12);
}

TEST(IsoperimetricExact, StarGraph) {
  // Star on n nodes: best cut takes floor(n/2) leaves; expansion 1.
  const auto cut = isoperimetric_exact(star(9));
  EXPECT_NEAR(cut.expansion, 1.0, 1e-12);
}

TEST(IsoperimetricExact, PathHasWeakestExpansion) {
  // P_n: cut the middle edge -> 1 / floor(n/2).
  const std::size_t n = 10;
  const auto cut = isoperimetric_exact(path_graph(n));
  EXPECT_NEAR(cut.expansion, 1.0 / (n / 2), 1e-12);
  EXPECT_EQ(cut.cut_edges, 1u);
}

TEST(IsoperimetricExact, RejectsOversizedGraph) {
  Rng rng(1);
  EXPECT_THROW(isoperimetric_exact(ring(30)), precondition_error);
}

TEST(CutExpansion, MatchesManualCount) {
  const Graph g = ring(6);
  std::vector<bool> in_s(6, false);
  in_s[0] = in_s[1] = in_s[2] = true;
  EXPECT_NEAR(cut_expansion(g, in_s), 2.0 / 3.0, 1e-12);
}

TEST(CutExpansion, RejectsTrivialCuts) {
  const Graph g = ring(4);
  std::vector<bool> all(4, true);
  EXPECT_THROW(cut_expansion(g, all), precondition_error);
  std::vector<bool> none(4, false);
  EXPECT_THROW(cut_expansion(g, none), precondition_error);
}

class CheegerSweep : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(CheegerSweep, InequalityHolds) {
  Rng rng(99);
  const Graph g = GetParam().make(rng);
  if (g.num_nodes() > 24) GTEST_SKIP() << "exact enumeration infeasible";
  const double h = isoperimetric_exact(g).expansion;
  const double gap = spectral_gap_exact(g);
  const auto bounds = cheeger_bounds(h, g.max_degree());
  EXPECT_LE(bounds.lower, gap + 1e-9)
      << "h=" << h << " gap=" << gap;
  EXPECT_GE(bounds.upper, gap - 1e-9)
      << "h=" << h << " gap=" << gap;
}

INSTANTIATE_TEST_SUITE_P(
    ExactFamilies, CheegerSweep,
    ::testing::ValuesIn(testing::exact_graph_cases()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(SweepCut, UpperBoundsExactIsoperimetric) {
  Rng rng(3);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = largest_component(erdos_renyi_gnp(18, 0.25, rng));
    if (g.num_nodes() < 4) continue;
    const auto exact = isoperimetric_exact(g);
    const auto fiedler = fiedler_vector(g, g.num_nodes() - 1);
    const auto sweep = sweep_cut(g, fiedler);
    EXPECT_GE(sweep.expansion, exact.expansion - 1e-9);
    // On such small graphs the Fiedler sweep is usually near-optimal.
    EXPECT_LE(sweep.expansion, 3.0 * exact.expansion + 1e-9);
  }
}

TEST(SweepCut, FindsObviousBottleneck) {
  // Two K_6 cliques joined by a single edge: the sweep must find a cut with
  // expansion 1/6.
  GraphBuilder b(12);
  for (NodeId u = 0; u < 6; ++u)
    for (NodeId v = u + 1; v < 6; ++v) b.add_edge(u, v);
  for (NodeId u = 6; u < 12; ++u)
    for (NodeId v = u + 1; v < 12; ++v) b.add_edge(u, v);
  b.add_edge(0, 6);
  const Graph g = b.build();
  const auto sweep = sweep_cut(g, fiedler_vector(g, 11));
  EXPECT_NEAR(sweep.expansion, 1.0 / 6.0, 1e-9);
  EXPECT_EQ(sweep.cut_edges, 1u);
  EXPECT_EQ(sweep.side.size(), 6u);
}

TEST(CheegerBounds, Formula) {
  const auto b = cheeger_bounds(0.5, 8);
  EXPECT_DOUBLE_EQ(b.lower, 0.25 / 16.0);
  EXPECT_DOUBLE_EQ(b.upper, 1.0);
  EXPECT_THROW(cheeger_bounds(-0.1, 3), precondition_error);
  EXPECT_THROW(cheeger_bounds(0.5, 0), precondition_error);
}

TEST(Expansion, ExpanderBeatsRingAtSameSize) {
  // The property the paper leans on: random graphs expand, rings do not.
  Rng rng(5);
  const Graph expander = largest_component(k_out_graph(20, 3, rng));
  if (expander.num_nodes() >= 16 && expander.num_nodes() <= 24) {
    const double h_expander = isoperimetric_exact(expander).expansion;
    const double h_ring = isoperimetric_exact(ring(20)).expansion;
    EXPECT_GT(h_expander, h_ring);
  }
}

}  // namespace
}  // namespace overcount

#include "spectral/laplacian.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace overcount {
namespace {

TEST(Laplacian, RowSumsAreZero) {
  Rng rng(1);
  const Graph g = balanced_random_graph(30, rng);
  const auto m = dense_laplacian(g);
  for (std::size_t i = 0; i < m.size(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < m.size(); ++j) row += m(i, j);
    EXPECT_NEAR(row, 0.0, 1e-12);
  }
}

TEST(Laplacian, ApplyMatchesDense) {
  Rng rng(2);
  const Graph g = erdos_renyi_gnp(25, 0.2, rng);
  const auto m = dense_laplacian(g);
  std::vector<double> x(g.num_nodes());
  for (auto& v : x) v = rng.uniform() - 0.5;
  std::vector<double> y(g.num_nodes());
  laplacian_apply(g, x, y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double expected = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) expected += m(i, j) * x[j];
    EXPECT_NEAR(y[i], expected, 1e-10);
  }
}

TEST(LaplacianSpectrum, CompleteGraph) {
  // K_n: eigenvalues 0 (once) and n (n-1 times).
  const std::size_t n = 9;
  const auto spec = laplacian_spectrum(complete(n));
  EXPECT_NEAR(spec[0], 0.0, 1e-9);
  for (std::size_t i = 1; i < n; ++i)
    EXPECT_NEAR(spec[i], static_cast<double>(n), 1e-9);
}

TEST(LaplacianSpectrum, StarGraph) {
  // Star on n nodes: eigenvalues 0, 1 (n-2 times), n.
  const std::size_t n = 8;
  const auto spec = laplacian_spectrum(star(n));
  EXPECT_NEAR(spec[0], 0.0, 1e-9);
  for (std::size_t i = 1; i + 1 < n; ++i) EXPECT_NEAR(spec[i], 1.0, 1e-9);
  EXPECT_NEAR(spec[n - 1], static_cast<double>(n), 1e-9);
}

TEST(LaplacianSpectrum, CycleFormula) {
  // C_n: eigenvalues 2 - 2 cos(2 pi k / n).
  const std::size_t n = 12;
  const auto spec = laplacian_spectrum(ring(n));
  std::vector<double> expected;
  for (std::size_t k = 0; k < n; ++k)
    expected.push_back(
        2.0 - 2.0 * std::cos(2.0 * std::numbers::pi * k / n));
  std::sort(expected.begin(), expected.end());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(spec[i], expected[i], 1e-9);
}

TEST(LaplacianSpectrum, PathFormula) {
  // P_n: eigenvalues 2 - 2 cos(pi k / n), k = 0..n-1.
  const std::size_t n = 10;
  const auto spec = laplacian_spectrum(path_graph(n));
  std::vector<double> expected;
  for (std::size_t k = 0; k < n; ++k)
    expected.push_back(2.0 - 2.0 * std::cos(std::numbers::pi * k / n));
  std::sort(expected.begin(), expected.end());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(spec[i], expected[i], 1e-9);
}

TEST(SpectralGap, CompleteBipartite) {
  // K_{a,b} (a <= b): lambda_2 = a.
  EXPECT_NEAR(spectral_gap_exact(complete_bipartite(3, 6)), 3.0, 1e-9);
  EXPECT_NEAR(spectral_gap_exact(complete_bipartite(5, 5)), 5.0, 1e-9);
}

TEST(SpectralGap, DisconnectedGraphHasZeroGap) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_NEAR(spectral_gap_exact(b.build()), 0.0, 1e-9);
}

class LanczosVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LanczosVsExact, AgreesWithDenseSolver) {
  Rng rng(GetParam());
  const Graph g = largest_component(erdos_renyi_gnp(60, 0.12, rng));
  const double exact = spectral_gap_exact(g);
  const double lanczos = spectral_gap_lanczos(g, 59, GetParam());
  EXPECT_NEAR(lanczos, exact, 1e-6 * std::max(1.0, exact));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LanczosVsExact,
                         ::testing::Values(3, 17, 23, 91));

TEST(Lanczos, KnownGapsRecovered) {
  EXPECT_NEAR(spectral_gap_lanczos(complete(40)), 40.0, 1e-6);
  EXPECT_NEAR(spectral_gap_lanczos(star(40)), 1.0, 1e-6);
  const std::size_t n = 24;
  EXPECT_NEAR(spectral_gap_lanczos(ring(n)),
              2.0 - 2.0 * std::cos(2.0 * std::numbers::pi / n), 1e-8);
}

TEST(Lanczos, LargeSparseGraphRuns) {
  Rng rng(5);
  const Graph g = largest_component(balanced_random_graph(3000, rng));
  const double gap = spectral_gap_lanczos(g, 120);
  EXPECT_GT(gap, 0.5);   // balanced random graphs are good expanders
  EXPECT_LT(gap, 11.0);  // gap <= n/(n-1) * min cut-ish; sanity ceiling
}

TEST(FiedlerVector, RayleighQuotientNearGap) {
  Rng rng(6);
  const Graph g = largest_component(erdos_renyi_gnp(50, 0.15, rng));
  const auto v = fiedler_vector(g, 49);
  // Rayleigh quotient v'Lv / v'v should approximate lambda_2, and v should
  // be orthogonal to the constant vector.
  std::vector<double> lv(g.num_nodes());
  laplacian_apply(g, v, lv);
  double num = 0.0;
  double den = 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    num += v[i] * lv[i];
    den += v[i] * v[i];
    sum += v[i];
  }
  EXPECT_NEAR(num / den, spectral_gap_exact(g), 1e-5);
  EXPECT_NEAR(sum, 0.0, 1e-6);
}

}  // namespace
}  // namespace overcount

// Exactly solvable spectra beyond the basics: hypercubes (binomial
// multiplicities), tori (sums of cycle eigenvalues), and grids (sums of
// path eigenvalues) — product-graph identities that stress the eigensolvers
// on structured degeneracies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"

namespace overcount {
namespace {

TEST(Hypercube, StructureIsCorrect) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);  // n * d / 2 = 16*4/2
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.has_edge(0b0000, 0b0001));
  EXPECT_FALSE(g.has_edge(0b0000, 0b0011));
}

TEST(Hypercube, SpectrumIsBinomial) {
  // Laplacian eigenvalues of Q_d: 2k with multiplicity C(d, k).
  const std::size_t d = 4;
  const auto spec = laplacian_spectrum(hypercube(d));
  std::vector<double> expected;
  for (std::size_t k = 0; k <= d; ++k) {
    // C(4,k) copies of 2k.
    const std::size_t binom[] = {1, 4, 6, 4, 1};
    for (std::size_t m = 0; m < binom[k]; ++m)
      expected.push_back(2.0 * static_cast<double>(k));
  }
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(spec.size(), expected.size());
  for (std::size_t i = 0; i < spec.size(); ++i)
    EXPECT_NEAR(spec[i], expected[i], 1e-8);
}

TEST(Hypercube, GapIsTwoAtEveryDimension) {
  for (std::size_t d : {2u, 3u, 5u}) {
    EXPECT_NEAR(spectral_gap_exact(hypercube(d)), 2.0, 1e-8) << "d=" << d;
  }
  // Lanczos path agrees at a size the dense solver can't touch.
  EXPECT_NEAR(spectral_gap_lanczos(hypercube(10), 200), 2.0, 1e-6);
}

TEST(Torus, SpectrumIsCycleSum) {
  // L(C_a x C_b) eigenvalues: (2-2cos(2pi i/a)) + (2-2cos(2pi j/b)).
  const std::size_t a = 4;
  const std::size_t b = 5;
  const auto spec = laplacian_spectrum(grid_2d(a, b, true));
  std::vector<double> expected;
  for (std::size_t i = 0; i < a; ++i)
    for (std::size_t j = 0; j < b; ++j)
      expected.push_back(
          4.0 - 2.0 * std::cos(2.0 * std::numbers::pi * i / a) -
          2.0 * std::cos(2.0 * std::numbers::pi * j / b));
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(spec.size(), expected.size());
  for (std::size_t i = 0; i < spec.size(); ++i)
    EXPECT_NEAR(spec[i], expected[i], 1e-8);
}

TEST(Grid, SpectrumIsPathSum) {
  // L(P_a x P_b) eigenvalues: (2-2cos(pi i/a)) + (2-2cos(pi j/b)).
  const std::size_t a = 3;
  const std::size_t b = 4;
  const auto spec = laplacian_spectrum(grid_2d(a, b, false));
  std::vector<double> expected;
  for (std::size_t i = 0; i < a; ++i)
    for (std::size_t j = 0; j < b; ++j)
      expected.push_back(2.0 - 2.0 * std::cos(std::numbers::pi * i / a) +
                         2.0 - 2.0 * std::cos(std::numbers::pi * j / b));
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(spec.size(), expected.size());
  for (std::size_t i = 0; i < spec.size(); ++i)
    EXPECT_NEAR(spec[i], expected[i], 1e-8);
}

TEST(Hypercube, PreconditionsEnforced) {
  EXPECT_THROW(hypercube(0), precondition_error);
  EXPECT_THROW(hypercube(21), precondition_error);
}

TEST(LanczosDegenerateEigenvalues, HypercubeDoesNotConfuseIt) {
  // Q_6 has eigenvalue 2 with multiplicity 6; Lanczos with full
  // reorthogonalisation must still isolate lambda_2 = 2 exactly.
  EXPECT_NEAR(spectral_gap_lanczos(hypercube(6), 63), 2.0, 1e-7);
}

}  // namespace
}  // namespace overcount

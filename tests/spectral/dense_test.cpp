#include "spectral/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace overcount {
namespace {

TEST(Jacobi, DiagonalMatrixEigenvalues) {
  DenseSymMatrix m(3);
  m.set(0, 0, 3.0);
  m.set(1, 1, 1.0);
  m.set(2, 2, 2.0);
  const auto vals = jacobi_eigenvalues(m);
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_NEAR(vals[0], 1.0, 1e-10);
  EXPECT_NEAR(vals[1], 2.0, 1e-10);
  EXPECT_NEAR(vals[2], 3.0, 1e-10);
}

TEST(Jacobi, TwoByTwoKnownSpectrum) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  DenseSymMatrix m(2);
  m.set(0, 0, 2.0);
  m.set(1, 1, 2.0);
  m.set(0, 1, 1.0);
  const auto vals = jacobi_eigenvalues(m);
  EXPECT_NEAR(vals[0], 1.0, 1e-10);
  EXPECT_NEAR(vals[1], 3.0, 1e-10);
}

TEST(Jacobi, TraceAndDeterminantPreserved) {
  Rng rng(5);
  const std::size_t n = 12;
  DenseSymMatrix m(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j)
      m.set(i, j, rng.uniform() * 2.0 - 1.0);
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += m(i, i);
  const auto vals = jacobi_eigenvalues(m);
  double sum = 0.0;
  for (double v : vals) sum += v;
  EXPECT_NEAR(sum, trace, 1e-9);
}

TEST(JacobiEigensystem, VectorsSatisfyDefinition) {
  Rng rng(6);
  const std::size_t n = 8;
  DenseSymMatrix m(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) m.set(i, j, rng.uniform());
  const auto es = jacobi_eigensystem(m);
  for (std::size_t k = 0; k < n; ++k) {
    // || M v - lambda v || should be tiny.
    double err = 0.0;
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double mv = 0.0;
      for (std::size_t j = 0; j < n; ++j) mv += m(i, j) * es.vectors[k][j];
      const double r = mv - es.values[k] * es.vectors[k][i];
      err += r * r;
      norm += es.vectors[k][i] * es.vectors[k][i];
    }
    EXPECT_LT(std::sqrt(err), 1e-8);
    EXPECT_NEAR(norm, 1.0, 1e-8);
  }
}

TEST(JacobiEigensystem, VectorsAreOrthogonal) {
  Rng rng(7);
  const std::size_t n = 6;
  DenseSymMatrix m(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) m.set(i, j, rng.uniform());
  const auto es = jacobi_eigensystem(m);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        dot += es.vectors[a][i] * es.vectors[b][i];
      EXPECT_NEAR(dot, 0.0, 1e-8);
    }
  }
}

TEST(Tridiagonal, MatchesJacobiOnSameMatrix) {
  Rng rng(8);
  const std::size_t n = 15;
  std::vector<double> diag(n);
  std::vector<double> off(n - 1);
  for (auto& d : diag) d = rng.uniform() * 4.0 - 2.0;
  for (auto& o : off) o = rng.uniform() * 2.0 - 1.0;
  DenseSymMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.set(i, i, diag[i]);
    if (i + 1 < n) m.set(i, i + 1, off[i]);
  }
  const auto via_jacobi = jacobi_eigenvalues(m);
  const auto via_sturm = tridiagonal_eigenvalues(diag, off);
  ASSERT_EQ(via_sturm.size(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(via_sturm[i], via_jacobi[i], 1e-8);
}

TEST(Tridiagonal, SingleElement) {
  const auto vals = tridiagonal_eigenvalues({4.2}, {});
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_NEAR(vals[0], 4.2, 1e-10);
}

TEST(DenseSymMatrix, SetMirrors) {
  DenseSymMatrix m(3);
  m.set(0, 2, 5.0);
  EXPECT_DOUBLE_EQ(m(2, 0), 5.0);
  m.add(0, 2, 1.0);
  EXPECT_DOUBLE_EQ(m(2, 0), 6.0);
  EXPECT_THROW(m(3, 0), precondition_error);
}

}  // namespace
}  // namespace overcount

#include "dht/chord.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/random_tour.hpp"
#include "core/sample_collide.hpp"
#include "graph/connectivity.hpp"
#include "spectral/laplacian.hpp"
#include "util/stats.hpp"

namespace overcount {
namespace {

TEST(ChordRing, IdsSortedAndDistinct) {
  Rng rng(1);
  const ChordRing ring(500, rng);
  for (std::size_t i = 1; i < ring.size(); ++i)
    EXPECT_LT(ring.id_of(i - 1), ring.id_of(i));
}

TEST(ChordRing, SuccessorOfFindsOwner) {
  Rng rng(2);
  const ChordRing ring(100, rng);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    // A key equal to a peer's id is owned by that peer.
    EXPECT_EQ(ring.successor_of(ring.id_of(i)), i);
    // A key one above peer i's id is owned by the next peer.
    const std::size_t next = (i + 1) % ring.size();
    EXPECT_EQ(ring.successor_of(ring.id_of(i) + 1), next);
  }
}

TEST(ChordRing, LookupReachesResponsiblePeer) {
  Rng rng(3);
  const ChordRing ring(1000, rng);
  Rng keys(4);
  for (int trial = 0; trial < 500; ++trial) {
    const ChordId key = keys.next();
    const auto from = static_cast<std::size_t>(keys.uniform_below(1000));
    const auto result = ring.lookup(from, key);
    EXPECT_EQ(result.responsible, ring.successor_of(key));
    EXPECT_EQ(result.path.front(), from);
    EXPECT_EQ(result.path.back(), result.responsible);
  }
}

TEST(ChordRing, LookupIsLogarithmic) {
  Rng rng(5);
  Rng keys(6);
  RunningStats hops_small;
  RunningStats hops_large;
  const ChordRing small(500, rng);
  const ChordRing large(8000, rng);
  for (int trial = 0; trial < 400; ++trial) {
    hops_small.add(static_cast<double>(
        small.lookup(keys.uniform_below(500), keys.next()).hops));
    hops_large.add(static_cast<double>(
        large.lookup(keys.uniform_below(8000), keys.next()).hops));
  }
  // ~ (1/2) log2 N expected hops: 16x more peers adds ~2 hops, not 16x.
  EXPECT_LT(hops_large.mean(), hops_small.mean() + 4.0);
  EXPECT_LT(hops_large.mean(), 0.9 * std::log2(8000.0));
}

TEST(ChordRing, FingersAreLogarithmicallyMany) {
  Rng rng(7);
  const ChordRing ring(2000, rng);
  const double fingers = ring.average_distinct_fingers();
  EXPECT_GT(fingers, 0.5 * std::log2(2000.0));
  EXPECT_LT(fingers, 2.0 * std::log2(2000.0));
}

TEST(ChordRing, DensityEstimateUnbiased) {
  Rng rng(8);
  RunningStats stats;
  for (int trial = 0; trial < 50; ++trial) {
    const ChordRing ring(3000, rng);
    stats.add(ring.estimate_size_density(trial % 3000, 64));
  }
  const double se = stats.stddev() / std::sqrt(50.0);
  EXPECT_NEAR(stats.mean(), 3000.0, 5.0 * se + 100.0);
}

TEST(ChordRing, OverlayGraphIsConnectedExpander) {
  Rng rng(9);
  const ChordRing ring(1500, rng);
  const Graph g = ring.to_overlay_graph();
  EXPECT_EQ(g.num_nodes(), 1500u);
  EXPECT_TRUE(is_connected(g));
  // Chord's finger structure yields good expansion.
  EXPECT_GT(spectral_gap_lanczos(g, 120), 0.3);
}

TEST(ChordRing, GenericEstimatorsRunOnTheDht) {
  // The paper's point: generic methods work on ANY overlay, including
  // structured ones. Random Tour + Sample & Collide on the Chord topology.
  Rng rng(10);
  const ChordRing ring(2000, rng);
  const Graph g = ring.to_overlay_graph();
  const double n = static_cast<double>(g.num_nodes());

  Rng walk_rng(11);
  RunningStats tours;
  for (int t = 0; t < 1500; ++t)
    tours.add(random_tour_size(g, 0, walk_rng).value);
  const double se = tours.stddev() / std::sqrt(1500.0);
  EXPECT_NEAR(tours.mean(), n, 5.0 * se + 1e-9);

  SampleCollideEstimator sc(g, 0, 6.0, 20, walk_rng.split());
  RunningStats estimates;
  for (int t = 0; t < 10; ++t) estimates.add(sc.estimate().simple);
  EXPECT_NEAR(estimates.mean(), n,
              4.0 * estimates.stddev() / std::sqrt(10.0));
}

TEST(ChordRing, DensityBeatsWalksOnItsHomeTurf) {
  // ...but where the DHT structure exists, the density estimator costs
  // O(k) instead of O(sqrt(l N) T dbar): the paper's Section 2.1 trade-off.
  Rng rng(12);
  const ChordRing ring(4000, rng);
  const std::size_t k = 64;
  const double density_cost = static_cast<double>(k);  // k successor reads
  const Graph g = ring.to_overlay_graph();
  SampleCollideEstimator sc(g, 0, 6.0, 20, rng.split());
  const auto e = sc.estimate();
  EXPECT_GT(static_cast<double>(e.hops), 20.0 * density_cost);
}

TEST(ChordRing, PreconditionsEnforced) {
  Rng rng(13);
  EXPECT_THROW(ChordRing(1, rng), precondition_error);
  EXPECT_THROW(ChordRing(10, rng, 0), precondition_error);
  EXPECT_THROW(ChordRing(10, rng, 10), precondition_error);
  const ChordRing ring(10, rng);
  EXPECT_THROW(ring.lookup(10, 0), precondition_error);
  EXPECT_THROW(ring.estimate_size_density(0, 10), precondition_error);
}

}  // namespace
}  // namespace overcount

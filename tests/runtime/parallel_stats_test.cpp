// Statistical regression tests for the parallel batch APIs: parallelism
// must not change the DISTRIBUTIONS the paper's guarantees are about. All
// seeds are fixed, so each assertion is a deterministic regression check —
// the thresholds are derived from the relevant confidence intervals but
// nothing here is flaky.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/parallel.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"
#include "util/stats.hpp"
#include "util/tests.hpp"

namespace overcount {
namespace {

Graph balanced_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return largest_component(balanced_random_graph(n, rng));
}

TEST(ParallelStats, CtrwSamplesRemainUniform) {
  // Section 4.1's headline property, re-asserted through the parallel path:
  // a batch of CTRW samples fanned over 4 threads is uniform over the
  // peers. Timer budgeted from the measured gap as in the serial test.
  const Graph g = balanced_graph(200, 301);
  const std::size_t n = g.num_nodes();
  const double gap = spectral_gap_lanczos(g, n - 1);
  const double timer =
      recommended_ctrw_timer(static_cast<double>(n), gap, 2.0);
  const auto batch =
      run_samples(g, 0, 40 * n, timer, /*seed=*/302, /*n_threads=*/4u);
  std::vector<std::size_t> counts(n, 0);
  for (const auto& s : batch.samples) ++counts[s.node];
  const auto result = chi_square_uniform(counts);
  EXPECT_GT(result.p_value, 1e-4)
      << "stat=" << result.statistic << " dof=" << result.dof;
}

TEST(ParallelStats, CtrwUniformityHoldsOnStarGraph) {
  // Degree heterogeneity is where a biased sampler fails first (the hub of
  // a star absorbs a DTRW); the parallel CTRW batch must stay uniform.
  const Graph g = star(21);
  const auto batch = run_samples(g, 1, 8000, /*timer=*/25.0, /*seed=*/303,
                                 /*n_threads=*/4u);
  std::size_t hub = 0;
  for (const auto& s : batch.samples)
    if (s.node == 0) ++hub;
  const double hub_rate =
      static_cast<double>(hub) / static_cast<double>(batch.samples.size());
  EXPECT_LT(hub_rate, 0.10);  // uniform is 1/21 ~ 4.8%; DTRW puts ~1/2 here
}

TEST(ParallelStats, TourMeanIsUnbiasedWithinConfidenceInterval) {
  // Proposition 1: E[Phi_hat] = N exactly. The batch mean of m parallel
  // tours must land inside a 4-sigma interval around N, with sigma taken
  // from the batch's own sample standard deviation — a CI-derived bound,
  // not a hand-tuned tolerance. Fixed seed => deterministic outcome.
  const Graph g = balanced_graph(300, 304);
  const double n = static_cast<double>(g.num_nodes());
  const std::size_t m = 4000;
  const auto batch = run_tours_size(g, 0, m, /*seed=*/305, /*n_threads=*/4u);
  ASSERT_EQ(batch.completed, m);
  RunningStats values;
  for (const auto& t : batch.tours) values.add(t.value);
  const double se = values.stddev() / std::sqrt(static_cast<double>(m));
  EXPECT_NEAR(batch.mean(), n, 4.0 * se)
      << "mean=" << batch.mean() << " se=" << se;
  // The tree-reduced batch mean and the Welford mean agree to rounding.
  EXPECT_NEAR(batch.mean(), values.mean(), 1e-9 * n);
}

TEST(ParallelStats, TourMeanUnbiasedForWeightedAggregates) {
  // Same unbiasedness for a non-constant f (Section 3's general Phi).
  const Graph g = balanced_graph(200, 306);
  double phi = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    phi += static_cast<double>(v % 7);
  const std::size_t m = 4000;
  const auto batch = run_tours(
      g, 0, m, [](NodeId v) { return static_cast<double>(v % 7); },
      /*seed=*/307, /*n_threads=*/4u);
  RunningStats values;
  for (const auto& t : batch.tours) values.add(t.value);
  const double se = values.stddev() / std::sqrt(static_cast<double>(m));
  EXPECT_NEAR(batch.mean(), phi, 4.0 * se);
}

TEST(ParallelStats, ScEstimatesConcentrateAroundN) {
  // Cor. 1: relative MSE of the simple estimator tends to 1/ell. With
  // ell = 20 a batch of trials must average within a few relative standard
  // errors of N.
  const Graph g = balanced_graph(400, 308);
  const double n = static_cast<double>(g.num_nodes());
  const double gap = spectral_gap_lanczos(g, g.num_nodes() - 1);
  const double timer = recommended_ctrw_timer(n, gap, 1.5);
  const std::size_t trials = 32, ell = 20;
  const auto batch =
      run_sc_trials(g, 0, trials, timer, ell, /*seed=*/309, 4u);
  // Relative sd of one trial ~ 1/sqrt(ell); of the mean of `trials` trials
  // ~ 1/sqrt(ell * trials).
  const double rel_se = 1.0 / std::sqrt(static_cast<double>(ell * trials));
  EXPECT_NEAR(batch.mean_simple() / n, 1.0, 5.0 * rel_se)
      << "mean=" << batch.mean_simple();
  EXPECT_NEAR(batch.mean_ml() / n, 1.0, 5.0 * rel_se)
      << "mean=" << batch.mean_ml();
}

TEST(ParallelStats, ErlangLawOfScTrialsSurvivesParallelism) {
  // Prop. 3 via KS: C_ell^2/(2 ell N) over independent parallel trials
  // follows Erlang(ell, ell)/ell in the large-N limit; at N ~ 400 the KS
  // distance should at least clear a loose significance floor.
  const Graph g = balanced_graph(400, 310);
  const double n = static_cast<double>(g.num_nodes());
  const double gap = spectral_gap_lanczos(g, g.num_nodes() - 1);
  const double timer = recommended_ctrw_timer(n, gap, 1.5);
  const int ell = 10;
  const auto batch = run_sc_trials(g, 0, 60, timer, ell, /*seed=*/311, 4u);
  std::vector<double> normalised;
  for (const auto& t : batch.trials) normalised.push_back(t.simple / n);
  const auto ks = ks_test(std::move(normalised), [&](double x) {
    return erlang_cdf(ell, static_cast<double>(ell), x);
  });
  EXPECT_GT(ks.p_value, 1e-3) << "ks=" << ks.statistic;
}

TEST(ParallelStats, MetropolisSamplesAreUnbiasedOnStar) {
  // The Metropolis walk's stationary law is uniform; after enough steps the
  // hub rate of a parallel batch must be near 1/n, not the DTRW's 1/2.
  const Graph g = star(21);
  const auto batch = run_metropolis_samples(g, 1, 6000, /*steps=*/200,
                                            /*seed=*/312, 4u);
  std::size_t hub = 0;
  for (const auto& s : batch.samples)
    if (s.node == 0) ++hub;
  const double hub_rate =
      static_cast<double>(hub) / static_cast<double>(batch.samples.size());
  // 1/21 ~ 4.8%; binomial se over 6000 draws ~ 0.28%, bound is ~10 se.
  EXPECT_NEAR(hub_rate, 1.0 / 21.0, 0.03);
}

}  // namespace
}  // namespace overcount

#include "runtime/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/parallel.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace overcount {
namespace {

Graph test_graph() {
  Rng rng(41);
  return largest_component(balanced_random_graph(300, rng));
}

TEST(ParallelRunner, RunsEveryTaskExactlyOnce) {
  ParallelRunner runner(4);
  std::vector<int> hits(100, 0);
  runner.run<int>(hits.size(), [&](std::size_t i) { return ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelRunner, ResultsAreInTaskIndexOrder) {
  ParallelRunner runner(8);
  const auto out = runner.run<std::size_t>(
      1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, EmptyBatch) {
  ParallelRunner runner(4);
  BatchStats stats;
  const auto out = runner.run<int>(
      0, [](std::size_t) { return 1; }, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.tasks, 0u);
  EXPECT_EQ(stats.threads, 4u);
}

TEST(ParallelRunner, SingleTask) {
  ParallelRunner runner(8);
  const auto out = runner.run<int>(1, [](std::size_t) { return 7; });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7);
}

TEST(ParallelRunner, ZeroThreadsMeansHardwareConcurrency) {
  ParallelRunner runner(0);
  EXPECT_GE(runner.thread_count(), 1u);
}

TEST(ParallelRunner, PoolIsReusableAcrossBatches) {
  ParallelRunner runner(3);
  for (int round = 0; round < 20; ++round) {
    const auto out = runner.run<int>(
        17, [&](std::size_t i) { return round + static_cast<int>(i); });
    EXPECT_EQ(out[16], round + 16);
  }
}

TEST(ParallelRunner, PropagatesTaskException) {
  ParallelRunner runner(4);
  EXPECT_THROW(runner.run<int>(50,
                               [](std::size_t i) {
                                 if (i == 13)
                                   throw std::runtime_error("task 13 failed");
                                 return 0;
                               }),
               std::runtime_error);
}

TEST(ParallelRunner, RethrowsLowestIndexExceptionDeterministically) {
  // Two tasks throw; whichever worker hits one first, the caller must see
  // the LOWEST task index so failures are reproducible across schedules.
  ParallelRunner runner(8);
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      runner.run<int>(64, [](std::size_t i) -> int {
        if (i == 5) throw std::runtime_error("five");
        if (i == 40) throw std::runtime_error("forty");
        return 0;
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "five");
    }
  }
}

TEST(ParallelRunner, FillsBatchStats) {
  ParallelRunner runner(2);
  BatchStats stats;
  runner.run<int>(
      200,
      [](std::size_t i) {
        volatile double x = 0.0;
        for (int k = 0; k < 1000; ++k) x += static_cast<double>(k + i);
        return static_cast<int>(x);
      },
      &stats);
  EXPECT_EQ(stats.tasks, 200u);
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_GE(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.cpu_seconds, 0.0);
}

TEST(DeriveStreams, PureInSeedAndIndex) {
  auto a = derive_streams(99, 8);
  auto b = derive_streams(99, 8);
  auto c = derive_streams(100, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a[i].next(), b[i].next()) << i;
    EXPECT_NE(a[i].next(), c[i].next()) << i;
  }
  // A longer batch re-derives the same prefix: stream i depends only on
  // (seed, i), never on the batch size.
  auto longer = derive_streams(99, 16);
  auto fresh = derive_streams(99, 8);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(longer[i].next(), fresh[i].next()) << i;
}

TEST(TreeReduce, MatchesSerialSumExactlyOnIntegers) {
  std::vector<double> xs(1000);
  std::iota(xs.begin(), xs.end(), 1.0);
  EXPECT_EQ(tree_sum(xs), 500500.0);
}

TEST(TreeReduce, EmptyAndSingleton) {
  EXPECT_EQ(tree_sum({}), 0.0);
  const std::vector<double> one{3.25};
  EXPECT_EQ(tree_sum(one), 3.25);
}

TEST(TreeReduce, FixedAssociationOrder) {
  // 7 elements: ((a+b)+(c+d)) + ((e+f)+g). Verified against the hand-rolled
  // tree so the reduction shape can never silently change.
  const std::vector<double> xs{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7};
  const double expected =
      (((0.1 + 0.2) + (0.3 + 0.4)) + ((0.5 + 0.6) + 0.7));
  EXPECT_EQ(tree_sum(xs), expected);
}

TEST(TreeReduce, GenericOperator) {
  const std::vector<std::uint64_t> xs{3, 5, 7, 11};
  const auto product = tree_reduce(
      std::span<const std::uint64_t>(xs), std::uint64_t{1},
      [](std::uint64_t a, std::uint64_t b) { return a * b; });
  EXPECT_EQ(product, 1155u);
}

// --- Bit-identical batches across thread counts (the acceptance check) ---

template <typename Batch>
void expect_same_tour_batch(const Batch& a, const Batch& b) {
  ASSERT_EQ(a.tours.size(), b.tours.size());
  for (std::size_t i = 0; i < a.tours.size(); ++i) {
    EXPECT_EQ(a.tours[i].value, b.tours[i].value) << "tour " << i;
    EXPECT_EQ(a.tours[i].steps, b.tours[i].steps) << "tour " << i;
    EXPECT_EQ(a.tours[i].completed, b.tours[i].completed) << "tour " << i;
  }
  EXPECT_EQ(a.sum, b.sum);  // bit-identical, not just approximately equal
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.truncated, b.truncated);
}

TEST(ParallelBatches, ToursBitIdenticalAcrossThreadCounts) {
  const Graph g = test_graph();
  const auto one = run_tours_size(g, 0, 200, /*seed=*/7, /*n_threads=*/1u);
  const auto two = run_tours_size(g, 0, 200, 7, 2u);
  const auto eight = run_tours_size(g, 0, 200, 7, 8u);
  expect_same_tour_batch(one, two);
  expect_same_tour_batch(one, eight);
  EXPECT_GT(one.mean(), 0.0);
}

TEST(ParallelBatches, SamplesBitIdenticalAcrossThreadCounts) {
  const Graph g = test_graph();
  const auto one = run_samples(g, 0, 500, /*timer=*/6.0, /*seed=*/11, 1u);
  const auto two = run_samples(g, 0, 500, 6.0, 11, 2u);
  const auto eight = run_samples(g, 0, 500, 6.0, 11, 8u);
  ASSERT_EQ(one.samples.size(), 500u);
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(one.samples[i].node, two.samples[i].node) << i;
    EXPECT_EQ(one.samples[i].node, eight.samples[i].node) << i;
    EXPECT_EQ(one.samples[i].hops, eight.samples[i].hops) << i;
  }
  EXPECT_EQ(one.total_hops, two.total_hops);
  EXPECT_EQ(one.total_hops, eight.total_hops);
}

TEST(ParallelBatches, ScTrialsBitIdenticalAcrossThreadCounts) {
  const Graph g = test_graph();
  const auto one = run_sc_trials(g, 0, 12, /*timer=*/6.0, /*ell=*/5,
                                 /*seed=*/13, 1u);
  const auto two = run_sc_trials(g, 0, 12, 6.0, 5, 13, 2u);
  const auto eight = run_sc_trials(g, 0, 12, 6.0, 5, 13, 8u);
  ASSERT_EQ(one.trials.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(one.trials[i].simple, eight.trials[i].simple) << i;
    EXPECT_EQ(one.trials[i].ml, eight.trials[i].ml) << i;
    EXPECT_EQ(one.trials[i].samples, eight.trials[i].samples) << i;
    EXPECT_EQ(one.trials[i].hops, two.trials[i].hops) << i;
  }
  EXPECT_EQ(one.sum_simple, two.sum_simple);
  EXPECT_EQ(one.sum_simple, eight.sum_simple);
  EXPECT_EQ(one.sum_ml, eight.sum_ml);
}

TEST(ParallelBatches, MetropolisBitIdenticalAcrossThreadCounts) {
  const Graph g = test_graph();
  const auto one = run_metropolis_samples(g, 0, 300, /*steps=*/64,
                                          /*seed=*/17, 1u);
  const auto eight = run_metropolis_samples(g, 0, 300, 64, 17, 8u);
  for (std::size_t i = 0; i < 300; ++i)
    EXPECT_EQ(one.samples[i].node, eight.samples[i].node) << i;
  EXPECT_EQ(one.total_hops, eight.total_hops);
}

TEST(ParallelBatches, ReusedRunnerMatchesThrowawayPool) {
  const Graph g = test_graph();
  ParallelRunner runner(3);
  const auto reused = run_tours_size(g, 0, 100, 23, runner);
  const auto fresh = run_tours_size(g, 0, 100, 23, 5u);
  expect_same_tour_batch(reused, fresh);
}

TEST(ParallelBatches, TruncatedToursAreDroppedAndReported) {
  // On a ring a 1-step tour can never return to the origin, so every tour
  // in the batch is truncated; the batch must drop them all from the
  // aggregate instead of averaging biased partial values.
  const Graph g = ring(64);
  const auto batch = run_tours_size(g, 0, 32, /*seed=*/3, 2u,
                                    /*max_steps=*/1);
  EXPECT_EQ(batch.truncated, 32u);
  EXPECT_EQ(batch.completed, 0u);
  // All-truncated batches carry no unbiased information: mean() must be NaN
  // (never 0.0, which reads as "the overlay is empty") and ok() false.
  EXPECT_FALSE(batch.ok());
  EXPECT_TRUE(std::isnan(batch.mean()));
  EXPECT_EQ(batch.total_steps, 32u);
  for (const auto& t : batch.tours) EXPECT_FALSE(t.completed);

  // With no cap every ring tour completes.
  const auto full = run_tours_size(g, 0, 32, 3, 2u);
  EXPECT_EQ(full.truncated, 0u);
  EXPECT_EQ(full.completed, 32u);
  EXPECT_TRUE(full.ok());
  EXPECT_GT(full.mean(), 0.0);
}

TEST(ParallelBatches, BatchStatsCountDomainSteps) {
  const Graph g = test_graph();
  const auto batch = run_tours_size(g, 0, 50, 29, 2u);
  EXPECT_EQ(batch.stats.tasks, 50u);
  EXPECT_EQ(batch.stats.steps, batch.total_steps);
  EXPECT_GT(batch.stats.steps, 0u);
  EXPECT_EQ(batch.stats.threads, 2u);
}

}  // namespace
}  // namespace overcount

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace overcount {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.population_variance(), 4.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10 - 5;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Ecdf, StepFunctionValues) {
  Ecdf e({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(e(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e(1.0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(e(1.5), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(e(2.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(e(3.0), 1.0);
  EXPECT_DOUBLE_EQ(e(99.0), 1.0);
}

TEST(Ecdf, RejectsEmpty) {
  EXPECT_THROW(Ecdf(std::vector<double>{}), precondition_error);
}

TEST(Ecdf, QuantileInterpolates) {
  Ecdf e({0.0, 1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.125), 0.5);
}

TEST(Ecdf, KsDistanceOfIdenticalSamplesIsZero) {
  Ecdf a({1.0, 2.0, 3.0});
  Ecdf b({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(a.ks_distance(b), 0.0);
}

TEST(Ecdf, KsDistanceDetectsShift) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(i + 50);
  }
  Ecdf a(xs);
  Ecdf b(ys);
  EXPECT_GT(a.ks_distance(b), 0.45);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(5.0);   // bin 2
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), precondition_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), precondition_error);
}

TEST(SpanStats, MeanAndVariance) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(variance_of(xs), 5.0 / 3.0, 1e-12);
}

TEST(SpanStats, PreconditionsEnforced) {
  const std::vector<double> empty;
  const std::vector<double> one{1.0};
  EXPECT_THROW(mean_of(empty), precondition_error);
  EXPECT_THROW(variance_of(one), precondition_error);
}

}  // namespace
}  // namespace overcount

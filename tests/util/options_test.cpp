#include "util/options.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/contracts.hpp"

namespace overcount {
namespace {

Options make_standard() {
  Options opts;
  opts.add("nodes", "1000", "overlay size");
  opts.add("timer", "2.5", "sampling timer");
  opts.add_flag("verbose", "chatty output");
  return opts;
}

TEST(Options, DefaultsApplyWhenUnset) {
  Options opts = make_standard();
  const std::array<const char*, 1> argv{"prog"};
  opts.parse(1, argv.data());
  EXPECT_EQ(opts.get("nodes"), "1000");
  EXPECT_EQ(opts.get_int("nodes"), 1000);
  EXPECT_DOUBLE_EQ(opts.get_double("timer"), 2.5);
  EXPECT_FALSE(opts.get_flag("verbose"));
  EXPECT_FALSE(opts.has("nodes"));
}

TEST(Options, EqualsAndSpaceSyntax) {
  Options opts = make_standard();
  const std::array<const char*, 4> argv{"prog", "--nodes=42", "--timer",
                                        "7.5"};
  opts.parse(4, argv.data());
  EXPECT_EQ(opts.get_int("nodes"), 42);
  EXPECT_DOUBLE_EQ(opts.get_double("timer"), 7.5);
  EXPECT_TRUE(opts.has("nodes"));
}

TEST(Options, FlagsAndPositionals) {
  Options opts = make_standard();
  const std::array<const char*, 4> argv{"prog", "graph.txt", "--verbose",
                                        "out.csv"};
  opts.parse(4, argv.data());
  EXPECT_TRUE(opts.get_flag("verbose"));
  ASSERT_EQ(opts.positional().size(), 2u);
  EXPECT_EQ(opts.positional()[0], "graph.txt");
  EXPECT_EQ(opts.positional()[1], "out.csv");
}

TEST(Options, UnknownOptionThrows) {
  Options opts = make_standard();
  const std::array<const char*, 2> argv{"prog", "--typo=3"};
  EXPECT_THROW(opts.parse(2, argv.data()), std::runtime_error);
}

TEST(Options, MissingValueThrows) {
  Options opts = make_standard();
  const std::array<const char*, 2> argv{"prog", "--nodes"};
  EXPECT_THROW(opts.parse(2, argv.data()), std::runtime_error);
}

TEST(Options, FlagWithValueThrows) {
  Options opts = make_standard();
  const std::array<const char*, 2> argv{"prog", "--verbose=yes"};
  EXPECT_THROW(opts.parse(2, argv.data()), std::runtime_error);
}

TEST(Options, BadNumericValueThrows) {
  Options opts = make_standard();
  const std::array<const char*, 2> argv{"prog", "--nodes=12abc"};
  opts.parse(2, argv.data());
  EXPECT_THROW(opts.get_int("nodes"), std::runtime_error);
}

TEST(Options, DuplicateDeclarationRejected) {
  Options opts;
  opts.add("x", "1", "first");
  EXPECT_THROW(opts.add("x", "2", "again"), precondition_error);
}

TEST(Options, UndeclaredAccessRejected) {
  Options opts = make_standard();
  EXPECT_THROW(opts.get("nope"), precondition_error);
  EXPECT_THROW(opts.get_flag("nodes"), precondition_error);  // not a flag
}

TEST(Options, UsageListsEverything) {
  Options opts = make_standard();
  const std::string usage = opts.usage("demo");
  EXPECT_NE(usage.find("usage: demo"), std::string::npos);
  EXPECT_NE(usage.find("--nodes=<1000>"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("overlay size"), std::string::npos);
}

}  // namespace
}  // namespace overcount

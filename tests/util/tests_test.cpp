#include "util/tests.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace overcount {
namespace {

TEST(GammaP, KnownValues) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0})
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10);
  // P(0.5, x) = erf(sqrt(x)).
  for (double x : {0.25, 1.0, 4.0})
    EXPECT_NEAR(gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-9);
  EXPECT_DOUBLE_EQ(gamma_p(3.0, 0.0), 0.0);
  EXPECT_NEAR(gamma_p(3.0, 100.0), 1.0, 1e-12);
}

TEST(ErlangCdf, MatchesGammaIdentity) {
  // Erlang(2, 1): CDF = 1 - e^{-x}(1 + x).
  for (double x : {0.5, 1.0, 2.0, 4.0})
    EXPECT_NEAR(erlang_cdf(2, 1.0, x), 1.0 - std::exp(-x) * (1.0 + x), 1e-10);
  EXPECT_DOUBLE_EQ(erlang_cdf(3, 2.0, 0.0), 0.0);
  EXPECT_THROW(erlang_cdf(0, 1.0, 1.0), precondition_error);
}

TEST(NormalCdf, Symmetry) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96) + normal_cdf(1.96), 1.0, 1e-12);
}

TEST(ChiSquare, AcceptsFairCounts) {
  Rng rng(31);
  std::vector<std::size_t> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.uniform_below(10)];
  const auto r = chi_square_uniform(counts);
  EXPECT_GT(r.p_value, 1e-4);
  EXPECT_DOUBLE_EQ(r.dof, 9.0);
}

TEST(ChiSquare, RejectsBiasedCounts) {
  // Severely skewed counts must yield a tiny p-value.
  std::vector<std::size_t> counts{500, 100, 100, 100, 100, 100};
  const auto r = chi_square_uniform(counts);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(ChiSquare, AgainstExplicitExpectation) {
  const std::vector<double> observed{52, 48};
  const std::vector<double> expected{50, 50};
  const auto r = chi_square_test(observed, expected);
  EXPECT_NEAR(r.statistic, 4.0 / 50.0 + 4.0 / 50.0, 1e-12);
  EXPECT_GT(r.p_value, 0.5);
}

TEST(ChiSquare, PreconditionsEnforced) {
  const std::vector<double> obs{1.0};
  const std::vector<double> expected_wrong_size{1.0, 2.0};
  EXPECT_THROW(chi_square_test(obs, expected_wrong_size), precondition_error);
  const std::vector<double> zero_expected{0.0};
  EXPECT_THROW(chi_square_test(obs, zero_expected), precondition_error);
}

TEST(KsTest, AcceptsMatchingDistribution) {
  Rng rng(37);
  std::vector<double> samples(5000);
  for (auto& s : samples) s = rng.uniform();
  const auto r = ks_test(std::move(samples),
                         [](double x) { return std::clamp(x, 0.0, 1.0); });
  EXPECT_GT(r.p_value, 1e-4);
}

TEST(KsTest, RejectsWrongDistribution) {
  Rng rng(41);
  std::vector<double> samples(5000);
  for (auto& s : samples) s = rng.uniform() * 0.5;  // actually U[0, 0.5]
  const auto r = ks_test(std::move(samples),
                         [](double x) { return std::clamp(x, 0.0, 1.0); });
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, RequiresSamples) {
  EXPECT_THROW(ks_test({}, [](double) { return 0.5; }), precondition_error);
}

}  // namespace
}  // namespace overcount

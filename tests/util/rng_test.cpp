#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/tests.hpp"

namespace overcount {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformPositiveNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) ASSERT_GT(rng.uniform_positive(), 0.0);
}

TEST(Rng, UniformBelowRespectsBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.uniform_below(bound), bound);
  }
}

TEST(Rng, UniformBelowIsUniformChiSquare) {
  Rng rng(13);
  std::vector<std::size_t> counts(16, 0);
  for (int i = 0; i < 160000; ++i) ++counts[rng.uniform_below(16)];
  const auto result = chi_square_uniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "statistic=" << result.statistic;
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), precondition_error);
}

TEST(Rng, ExponentialHasCorrectDistribution) {
  Rng rng(19);
  const double rate = 2.5;
  std::vector<double> samples(20000);
  for (auto& s : samples) s = rng.exponential(rate);
  const auto ks = ks_test(std::move(samples), [rate](double x) {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-rate * x);
  });
  EXPECT_GT(ks.p_value, 1e-4) << "D=" << ks.statistic;
}

TEST(Rng, ExponentialRequiresPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), precondition_error);
  EXPECT_THROW(rng.exponential(-1.0), precondition_error);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  const double p_hat = static_cast<double>(hits) / n;
  EXPECT_NEAR(p_hat, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(99);
  Rng parent2(99);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1.next(), child2.next());

  // Child and parent sequences should not collide.
  Rng parent(99);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (parent.next() == child.next()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, SuccessiveSplitsDiffer) {
  Rng parent(5);
  Rng a = parent.split();
  Rng b = parent.split();
  EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace overcount

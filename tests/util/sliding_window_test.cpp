#include "util/sliding_window.hpp"

#include <gtest/gtest.h>

namespace overcount {
namespace {

TEST(SlidingWindowMean, PartialWindowAveragesWhatItHas) {
  SlidingWindowMean w(4);
  w.push(2.0);
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.push(4.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  EXPECT_FALSE(w.full());
  EXPECT_EQ(w.size(), 2u);
}

TEST(SlidingWindowMean, EvictsOldestWhenFull) {
  SlidingWindowMean w(3);
  for (double x : {1.0, 2.0, 3.0}) w.push(x);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.push(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_EQ(w.size(), 3u);
}

TEST(SlidingWindowMean, WindowOfOneTracksLastValue) {
  SlidingWindowMean w(1);
  w.push(5.0);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  w.push(-7.0);
  EXPECT_DOUBLE_EQ(w.mean(), -7.0);
}

TEST(SlidingWindowMean, ClearResets) {
  SlidingWindowMean w(2);
  w.push(1.0);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_THROW(w.mean(), precondition_error);
}

TEST(SlidingWindowMean, PreconditionsEnforced) {
  EXPECT_THROW(SlidingWindowMean(0), precondition_error);
  SlidingWindowMean w(2);
  EXPECT_THROW(w.mean(), precondition_error);
}

TEST(SlidingWindowMean, LongStreamStaysAccurate) {
  SlidingWindowMean w(100);
  for (int i = 0; i < 100000; ++i) w.push(static_cast<double>(i));
  // Last 100 values: 99900..99999, mean 99949.5.
  EXPECT_NEAR(w.mean(), 99949.5, 1e-6);
}

}  // namespace
}  // namespace overcount

#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "util/contracts.hpp"

namespace overcount {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "123456"});
  std::ostringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("| name  | value  |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1      |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 123456 |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5), "-0.5000");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Series, AddAccumulates) {
  Series s{"test", {}, {}};
  s.add(1.0, 10.0);
  s.add(2.0, 20.0);
  ASSERT_EQ(s.xs.size(), 2u);
  EXPECT_DOUBLE_EQ(s.ys[1], 20.0);
}

TEST(PrintSeries, EmitsHeaderAndPoints) {
  Series s{"rt", {1.0, 2.0}, {0.9, 1.1}};
  std::ostringstream ss;
  print_series(ss, "fig-test", {s});
  const std::string out = ss.str();
  EXPECT_NE(out.find("# figure: fig-test"), std::string::npos);
  EXPECT_NE(out.find("# series: rt (2 points)"), std::string::npos);
  EXPECT_NE(out.find("rt 1.000000 0.900000"), std::string::npos);
}

TEST(AsciiPlot, ProducesCanvasOfRequestedSize) {
  Series s{"plot", {}, {}};
  for (int i = 0; i < 50; ++i) s.add(i, i * i);
  std::ostringstream ss;
  ascii_plot(ss, s, 40, 10);
  std::string line;
  std::istringstream in(ss.str());
  int rows = 0;
  while (std::getline(in, line))
    if (!line.empty() && line.front() == '|') ++rows;
  EXPECT_EQ(rows, 10);
}

TEST(AsciiPlot, HandlesConstantSeries) {
  Series s{"flat", {0.0, 1.0}, {5.0, 5.0}};
  std::ostringstream ss;
  ascii_plot(ss, s);
  EXPECT_FALSE(ss.str().empty());
}

TEST(PrintCounters, RendersOneRowTable) {
  std::ostringstream ss;
  print_counters(ss, {{"tasks", "100"}, {"steps/s", "123456"}});
  const std::string out = ss.str();
  EXPECT_NE(out.find("tasks"), std::string::npos);
  EXPECT_NE(out.find("steps/s"), std::string::npos);
  EXPECT_NE(out.find("123456"), std::string::npos);
  // Header, underline, one value row.
  EXPECT_EQ(static_cast<int>(std::count(out.begin(), out.end(), '\n')), 3);
}

TEST(PrintCounters, RequiresNonEmpty) {
  std::ostringstream ss;
  EXPECT_THROW(print_counters(ss, {}), precondition_error);
}

}  // namespace
}  // namespace overcount

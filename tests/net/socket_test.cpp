// Shared-socket-helper contract (src/net/socket.hpp), including the errno
// policy the metrics exporter and the estimate front end both rely on:
// EINTR is invisible, EMFILE surfaces as kTransient (back off, retry, the
// pending connection survives in the kernel accept queue), and a closed
// listener ends the loop instead of spinning.
#include "net/socket.hpp"

#include <gtest/gtest.h>
#include <sys/resource.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <vector>

namespace overcount::net {
namespace {

struct Listener {
  int fd = -1;
  std::uint16_t port = 0;
  Listener() {
    fd = listen_loopback(0);
    if (fd >= 0) port = bound_port(fd);
  }
  ~Listener() {
    if (fd >= 0) ::close(fd);
  }
};

TEST(SocketHelpers, RoundTripAndEof) {
  Listener listener;
  ASSERT_GE(listener.fd, 0);
  ASSERT_NE(listener.port, 0);

  const int client = connect_loopback(listener.port);
  ASSERT_GE(client, 0);
  const AcceptResult accepted = accept_next(listener.fd, 1000);
  ASSERT_EQ(accepted.status, AcceptStatus::kAccepted);
  ASSERT_GE(accepted.fd, 0);

  const std::string payload = "twelve bytes";
  ASSERT_TRUE(send_all(client, payload.data(), payload.size()));
  char buf[64];
  std::string got;
  while (got.size() < payload.size()) {
    const ssize_t n = recv_some(accepted.fd, buf, sizeof(buf), 1000);
    ASSERT_GT(n, 0);
    got.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(got, payload);

  // Quiet peer: timeout, not EOF, not error.
  EXPECT_EQ(recv_some(accepted.fd, buf, sizeof(buf), 10), kRecvTimeout);

  ::close(client);
  EXPECT_EQ(recv_some(accepted.fd, buf, sizeof(buf), 1000), kRecvEof);
  ::close(accepted.fd);
}

TEST(SocketHelpers, AcceptTimesOutWhenIdle) {
  Listener listener;
  ASSERT_GE(listener.fd, 0);
  const AcceptResult res = accept_next(listener.fd, 10);
  EXPECT_EQ(res.status, AcceptStatus::kTimeout);
  EXPECT_EQ(res.fd, -1);
}

TEST(SocketHelpers, ClosedListenerReportsClosed) {
  Listener listener;
  ASSERT_GE(listener.fd, 0);
  const int doomed = listener.fd;
  ::close(doomed);
  listener.fd = -1;
  const AcceptResult res = accept_next(doomed, 10);
  EXPECT_EQ(res.status, AcceptStatus::kClosed);
}

// The satellite fix pinned: exhausting the process fd table while a
// connection is pending must surface as kTransient (EMFILE/ENFILE), not a
// crash, a leak, or a silent drop — and once a descriptor frees, the SAME
// pending connection is accepted, because the kernel kept it queued.
TEST(SocketHelpers, FdExhaustionIsTransientAndLossless) {
  Listener listener;
  ASSERT_GE(listener.fd, 0);

  // Complete a client handshake FIRST: it sits in the accept queue while
  // the fd table is full.
  const int client = connect_loopback(listener.port);
  ASSERT_GE(client, 0);

  rlimit original{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &original), 0);
  rlimit tight = original;
  tight.rlim_cur = 64;
  if (tight.rlim_cur > original.rlim_max) tight.rlim_cur = original.rlim_max;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &tight), 0);

  // Burn every remaining descriptor.
  std::vector<int> hogs;
  for (;;) {
    const int fd = ::dup(listener.fd);
    if (fd < 0) {
      ASSERT_EQ(errno, EMFILE);
      break;
    }
    hogs.push_back(fd);
    ASSERT_LT(hogs.size(), 4096u) << "rlimit not effective";
  }

  const AcceptResult starved = accept_next(listener.fd, 1000);
  EXPECT_EQ(starved.status, AcceptStatus::kTransient);
  EXPECT_TRUE(starved.error == EMFILE || starved.error == ENFILE)
      << "errno " << starved.error;
  EXPECT_EQ(starved.fd, -1);

  // Free one descriptor: the queued connection must now be accepted.
  ASSERT_FALSE(hogs.empty());
  ::close(hogs.back());
  hogs.pop_back();
  const AcceptResult recovered = accept_next(listener.fd, 1000);
  EXPECT_EQ(recovered.status, AcceptStatus::kAccepted);
  ASSERT_GE(recovered.fd, 0);

  // Prove it is a live socket, not a stale descriptor.
  const std::string ping = "x";
  ASSERT_TRUE(send_all(client, ping.data(), ping.size()));
  char buf[8];
  EXPECT_EQ(recv_some(recovered.fd, buf, sizeof(buf), 1000), 1);

  ::close(recovered.fd);
  ::close(client);
  for (const int fd : hogs) ::close(fd);
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &original), 0);
}

}  // namespace
}  // namespace overcount::net

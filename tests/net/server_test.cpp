// EstimateNetServer end-to-end contract over a real loopback socket:
// Hello/Welcome registration, request/response, every admission refusal as
// a kReject frame carrying retry_after_us (token bucket, unknown tenant,
// bad request, and the broker's own queue-full shed forwarded onto the
// wire), tenant multiplexing on one connection, pipelining, ping, and
// protocol-error handling (garbage gets a kError frame, then the
// connection closes).
#include "net/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"

namespace overcount::net {
namespace {

/// MetricsSnapshot stores counters as (name, value) pairs; linear lookup
/// is fine at test scale.
std::uint64_t counter_value(const MetricsSnapshot& snap,
                            const std::string& name) {
  for (const auto& [key, value] : snap.counters) {
    if (key == name) return value;
  }
  return 0;
}

/// Frozen deterministic clock shared by server + admission layer.
struct TestClock {
  std::shared_ptr<std::atomic<std::uint64_t>> us =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  std::function<std::uint64_t()> fn() const {
    auto ptr = us;
    return [ptr] { return ptr->load(std::memory_order_relaxed); };
  }
};

NetServerConfig base_config() {
  NetServerConfig config;
  config.acceptors = 2;
  config.shards = 1;
  config.service.threads = 2;
  config.service.queue_capacity = 16;
  config.service.lambda2_hint = 0.5;
  config.service.seed = 11;
  return config;
}

RequestMsg size_request(std::uint64_t id, std::uint32_t tenant,
                        double epsilon = 0.3) {
  RequestMsg req;
  req.request_id = id;
  req.tenant_id = tenant;
  req.kind = 0;    // size
  req.method = 0;  // random tour
  req.flags = kReqAllowCached | kReqExplicitTarget;
  req.epsilon = epsilon;
  req.delta = 0.2;
  return req;
}

TEST(NetServer, HelloRequestResponse) {
  const Graph g = complete(16);
  EstimateNetServer server(static_graph_source(g), base_config());
  ASSERT_NE(server.port(), 0);

  NetClient client;
  ASSERT_TRUE(client.connect(server.port()));
  auto welcome = client.hello("acme", 0);
  ASSERT_TRUE(welcome.has_value());
  EXPECT_NE(welcome->tenant_id, 0u);
  EXPECT_EQ(welcome->class_id, 0);
  EXPECT_GT(welcome->rate_per_sec, 0.0);

  auto result = client.request(size_request(1, welcome->tenant_id));
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->rejected);
  EXPECT_EQ(result->response.status, 0);  // kOk
  EXPECT_NEAR(result->response.value, 16.0, 16.0 * 0.4);
  EXPECT_GT(result->response.walks, 0u);

  // Identical repeat: served from the shard's cache.
  auto repeat = client.request(size_request(2, welcome->tenant_id));
  ASSERT_TRUE(repeat.has_value());
  ASSERT_FALSE(repeat->rejected);
  EXPECT_NE(repeat->response.flags & kRespCacheHit, 0);
  EXPECT_EQ(repeat->response.value, result->response.value);

  EXPECT_TRUE(client.ping(424242));
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_GE(counter_value(snap, "net.requests"), 2u);
  EXPECT_GE(counter_value(snap, "net.frames_rx"), 3u);
  EXPECT_GE(counter_value(snap, "net.connections"), 1u);
}

TEST(NetServer, UnknownTenantAndBadRequestRejected) {
  const Graph g = complete(12);
  EstimateNetServer server(static_graph_source(g), base_config());
  NetClient client;
  ASSERT_TRUE(client.connect(server.port()));

  // No Hello: refused, not crashed.
  auto result = client.request(size_request(1, 999));
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->rejected);
  EXPECT_EQ(result->reject.reason,
            static_cast<std::uint8_t>(RejectReason::kUnknownTenant));

  auto welcome = client.hello("acme", 0);
  ASSERT_TRUE(welcome.has_value());
  RequestMsg bad = size_request(2, welcome->tenant_id);
  bad.kind = 7;  // no such query kind
  auto bad_result = client.request(bad);
  ASSERT_TRUE(bad_result.has_value());
  ASSERT_TRUE(bad_result->rejected);
  EXPECT_EQ(bad_result->reject.reason,
            static_cast<std::uint8_t>(RejectReason::kBadRequest));

  RequestMsg nan_eps = size_request(3, welcome->tenant_id);
  nan_eps.epsilon = -1.0;
  auto nan_result = client.request(nan_eps);
  ASSERT_TRUE(nan_result.has_value());
  EXPECT_TRUE(nan_result->rejected);
}

TEST(NetServer, RateLimitRejectCarriesExactRetryHint) {
  const Graph g = complete(12);
  TestClock clock;
  NetServerConfig config = base_config();
  config.service.now_us = clock.fn();
  // 1 req/s, burst 1: under a frozen clock the second request must be
  // refused with the exact one-token refill time on the wire.
  config.classes = {{"strict", 0.3, 0.2, 0, 1.0, 1.0}};
  EstimateNetServer server(static_graph_source(g), config);
  NetClient client;
  ASSERT_TRUE(client.connect(server.port()));
  auto welcome = client.hello("greedy", 0);
  ASSERT_TRUE(welcome.has_value());

  auto first = client.request(size_request(1, welcome->tenant_id));
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->rejected);
  auto second = client.request(size_request(2, welcome->tenant_id));
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(second->rejected);
  EXPECT_EQ(second->reject.reason,
            static_cast<std::uint8_t>(RejectReason::kRateLimited));
  EXPECT_EQ(second->reject.retry_after_us, 1'000'000u);

  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(counter_value(snap, "net.rejects.rate_limited"), 1u);
}

TEST(NetServer, BrokerShedIsForwardedAsQueueFullReject) {
  const Graph g = complete(16);
  NetServerConfig config = base_config();
  config.service.queue_capacity = 2;
  config.max_inflight_per_conn = 64;
  EstimateNetServer server(static_graph_source(g), config);
  NetClient client;
  ASSERT_TRUE(client.connect(server.port()));
  auto welcome = client.hello("burst", 0);
  ASSERT_TRUE(welcome.has_value());

  // Freeze the broker so the EDF queue genuinely fills, then pipeline
  // more distinct uncacheable requests than it can hold.
  server.shard(0).set_paused(true);
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    RequestMsg req = size_request(static_cast<std::uint64_t>(100 + i),
                                  welcome->tenant_id,
                                  0.30 + 0.01 * static_cast<double>(i));
    req.flags = kReqExplicitTarget;  // allow_cached off: no coalescing
    ASSERT_TRUE(client.send_request(req));
  }
  server.shard(0).set_paused(false);

  int oks = 0;
  int queue_full = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto frame = client.read_frame(30'000);
    ASSERT_TRUE(frame.has_value()) << "reply " << i;
    if (frame->type() == FrameType::kResponse) {
      ++oks;
    } else if (frame->type() == FrameType::kReject) {
      auto reject = decode_reject(*frame);
      ASSERT_TRUE(reject.has_value());
      EXPECT_EQ(reject->reason,
                static_cast<std::uint8_t>(RejectReason::kQueueFull));
      ++queue_full;
    }
  }
  // The queue held some, shed the rest — and the shed came back as
  // first-class reject frames, not errors or hangs.
  EXPECT_GT(oks, 0);
  EXPECT_GT(queue_full, 0);
  EXPECT_EQ(oks + queue_full, kBurst);
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(counter_value(snap, "net.rejects.queue_full"),
            static_cast<std::uint64_t>(queue_full));
}

TEST(NetServer, MultiplexesTenantsOnOneConnection) {
  const Graph g = complete(16);
  EstimateNetServer server(static_graph_source(g), base_config());
  NetClient client;
  ASSERT_TRUE(client.connect(server.port()));
  auto gold = client.hello("gold-tenant", 0);
  auto bronze = client.hello("bronze-tenant", 2);
  ASSERT_TRUE(gold.has_value());
  ASSERT_TRUE(bronze.has_value());
  ASSERT_NE(gold->tenant_id, bronze->tenant_id);

  auto a = client.request(size_request(1, gold->tenant_id));
  auto b = client.request(size_request(2, bronze->tenant_id));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(a->rejected);
  EXPECT_FALSE(b->rejected);
  EXPECT_EQ(server.tenants().tenant_count(), 2u);

  // Per-tenant cost attribution rode along: both principals appear in the
  // ledger-facing SLO metrics keyed by class.
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_GE(counter_value(snap, "net.class.gold.responses"), 1u);
  EXPECT_GE(counter_value(snap, "net.class.bronze.responses"), 1u);
}

TEST(NetServer, GarbageStreamGetsErrorFrameThenClose) {
  const Graph g = complete(12);
  EstimateNetServer server(static_graph_source(g), base_config());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string garbage = "GET / HTTP/1.1\r\n\r\n";  // wrong protocol
  ASSERT_TRUE(send_all(fd, garbage.data(), garbage.size()));

  // Expect one kError frame, then EOF.
  FrameReader reader;
  char buf[4096];
  bool got_error = false;
  bool got_eof = false;
  for (int rounds = 0; rounds < 100 && !got_eof; ++rounds) {
    const ssize_t n = recv_some(fd, buf, sizeof(buf), 200);
    if (n == kRecvTimeout) continue;
    if (n <= 0) {
      got_eof = true;
      break;
    }
    reader.append(buf, static_cast<std::size_t>(n));
    Frame frame;
    while (reader.next(frame) == DecodeStatus::kFrame) {
      if (frame.type() == FrameType::kError) got_error = true;
    }
  }
  ::close(fd);
  EXPECT_TRUE(got_error);
  EXPECT_TRUE(got_eof);
  EXPECT_GE(counter_value(server.metrics().snapshot(), "net.protocol_errors"),
            1u);
}

TEST(NetServer, ServesManyConnectionsAcrossAcceptorPool) {
  const Graph g = complete(16);
  NetServerConfig config = base_config();
  config.acceptors = 3;
  EstimateNetServer server(static_graph_source(g), config);
  // More sequential connections than acceptors: each must be served as
  // pool slots free up.
  for (int i = 0; i < 6; ++i) {
    NetClient client;
    ASSERT_TRUE(client.connect(server.port())) << "connection " << i;
    auto welcome = client.hello("conn-" + std::to_string(i), 1);
    ASSERT_TRUE(welcome.has_value());
    auto result = client.request(size_request(1, welcome->tenant_id));
    ASSERT_TRUE(result.has_value());
    EXPECT_FALSE(result->rejected);
  }
  EXPECT_GE(counter_value(server.metrics().snapshot(), "net.connections"), 6u);
}

}  // namespace
}  // namespace overcount::net

// Tenant admission contract:
//  (a) Hello registers / rebinds; requests from unknown tenants refuse;
//  (b) the token bucket enforces rate + burst and its retry_after_us is
//      the exact time until the next token matures (injected clock);
//  (c) deficit round robin on top of the EDF DeadlineQueue keeps one
//      flooding tenant from starving nine polite ones: per-tenant deadline
//      hit-rates stay fair (Jain index >= 0.9, deterministic seedless
//      simulation), while the same arrival pattern WITHOUT the DRR layer
//      collapses to gross unfairness.
#include "net/tenant.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/deadline_queue.hpp"

namespace overcount::net {
namespace {

TEST(TenantRegistry, HelloRegistersAndRebinds) {
  TenantRegistry registry(default_slo_classes(), {});
  const std::uint32_t id = registry.hello("acme", 0, 0);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(registry.hello("acme", 1, 0), id);  // re-Hello keeps the id...
  ASSERT_NE(registry.spec_for(id), nullptr);
  EXPECT_EQ(registry.spec_for(id)->name, "silver");  // ...rebinds the class
  EXPECT_EQ(registry.name_for(id), "acme");
  EXPECT_EQ(registry.hello("acme", 9, 0), 0u);  // unknown class
  EXPECT_EQ(registry.hello("", 0, 0), 0u);      // empty name
  EXPECT_EQ(registry.tenant_count(), 1u);
}

TEST(TenantRegistry, UnknownTenantRefused) {
  TenantRegistry registry(default_slo_classes(), {});
  const AdmitDecision d = registry.admit(12345, 0, false);
  EXPECT_EQ(d.result, AdmitResult::kUnknownTenant);
}

TEST(TenantRegistry, TokenBucketRateAndExactRetryHint) {
  // 10 req/s, burst 2, clock under test control.
  TenantRegistry registry({{"c", 0.3, 0.2, 0, 10.0, 2.0}}, {});
  const std::uint32_t id = registry.hello("t", 0, 0);
  ASSERT_NE(id, 0u);

  EXPECT_EQ(registry.admit(id, 0, false).result, AdmitResult::kAdmit);
  EXPECT_EQ(registry.admit(id, 0, false).result, AdmitResult::kAdmit);
  const AdmitDecision broke = registry.admit(id, 0, false);
  EXPECT_EQ(broke.result, AdmitResult::kRateLimited);
  // Bucket is exactly empty: one token at 10/s takes 100 ms.
  EXPECT_EQ(broke.retry_after_us, 100'000u);

  // 50 ms later: still half a token short -> hint shrinks to 50 ms.
  EXPECT_EQ(registry.admit(id, 50'000, false).retry_after_us, 50'000u);
  // At the promised instant the request is admitted.
  EXPECT_EQ(registry.admit(id, 100'000, false).result, AdmitResult::kAdmit);
  // Refill is capped at burst, not unbounded banking.
  const AdmitDecision after_idle = registry.admit(id, 100'000'000, false);
  EXPECT_EQ(after_idle.result, AdmitResult::kAdmit);
  EXPECT_EQ(registry.admit(id, 100'000'000, false).result,
            AdmitResult::kAdmit);
  EXPECT_EQ(registry.admit(id, 100'000'000, false).result,
            AdmitResult::kRateLimited);
}

TEST(TenantRegistry, FairShareOnlyBitesWhenSaturated) {
  DrrConfig drr;
  drr.quantum = 2.0;
  drr.round_us = 1000;
  TenantRegistry registry({{"c", 0.3, 0.2, 0, 1e6, 1e6}}, drr);
  const std::uint32_t id = registry.hello("t", 0, 0);

  // Unsaturated: everything is admitted, but the deficit still drains.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(registry.admit(id, 0, false).result, AdmitResult::kAdmit);
  }
  // Saturation arrives: the pre-drained tenant is immediately deferred,
  // with a hint pointing at its next DRR round.
  const AdmitDecision deferred = registry.admit(id, 0, true);
  EXPECT_EQ(deferred.result, AdmitResult::kFairShare);
  EXPECT_GT(deferred.retry_after_us, 0u);
  EXPECT_LE(deferred.retry_after_us, drr.round_us);
  // The next round restores one quantum of credit.
  EXPECT_EQ(registry.admit(id, 1000, true).result, AdmitResult::kAdmit);
  EXPECT_EQ(registry.admit(id, 1000, true).result, AdmitResult::kAdmit);
  EXPECT_EQ(registry.admit(id, 1000, true).result, AdmitResult::kFairShare);
}

TEST(JainIndex, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_index({1, 1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({1, 0, 0, 0}), 0.25);  // 1/n
  EXPECT_DOUBLE_EQ(jain_index({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_index({0, 0}), 1.0);
}

/// One adversarial-soak round-based simulation: 10 tenants share an EDF
/// DeadlineQueue drained at `kServiceRate` items per round. Tenant 0
/// floods kFloodOffered requests per round and (adversarially) always
/// arrives first; tenants 1..9 offer kHonestOffered each. Returns the
/// per-tenant fraction of offered requests served by their deadline.
std::vector<double> run_fairness_sim(bool with_drr) {
  constexpr int kTenants = 10;
  constexpr int kRounds = 50;
  constexpr int kFloodOffered = 100;
  constexpr int kHonestOffered = 5;
  constexpr std::size_t kServiceRate = 60;     // pops per round
  constexpr std::size_t kQueueCapacity = 128;  // EDF queue bound
  constexpr std::size_t kSaturatedAt = 40;     // DRR engages here
  constexpr std::uint64_t kRoundUs = 10'000;
  constexpr std::uint64_t kGraceRounds = 2;    // deadline = arrival + grace

  DrrConfig drr;
  drr.quantum = 8.0;
  drr.round_us = kRoundUs;
  // Token buckets sized out of the way: this test isolates the DRR layer.
  TenantRegistry registry({{"c", 0.3, 0.2, 0, 1e9, 1e9}}, drr);
  std::vector<std::uint32_t> ids;
  for (int t = 0; t < kTenants; ++t) {
    ids.push_back(registry.hello("tenant-" + std::to_string(t), 0, 0));
  }

  DeadlineQueue<int> queue(kQueueCapacity);
  std::uint64_t seq = 0;
  std::vector<double> offered(kTenants, 0.0);
  std::vector<double> hits(kTenants, 0.0);

  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t now = static_cast<std::uint64_t>(round) * kRoundUs;
    const std::uint64_t deadline = now + kGraceRounds * kRoundUs;
    auto offer = [&](int tenant, int count) {
      for (int i = 0; i < count; ++i) {
        offered[static_cast<std::size_t>(tenant)] += 1.0;
        const bool saturated = with_drr && queue.size() >= kSaturatedAt;
        const AdmitDecision d =
            registry.admit(ids[static_cast<std::size_t>(tenant)], now,
                           saturated);
        if (d.result != AdmitResult::kAdmit) continue;  // deferred: a miss
        // Item encodes (tenant, arrival round) so the drain below can
        // compare each pop against the item's OWN deadline. A full queue
        // refusing the push is a miss too.
        queue.try_push(tenant * kRounds + round, deadline, seq++);
      }
    };
    offer(0, kFloodOffered);  // the flood arrives first, adversarially
    for (int t = 1; t < kTenants; ++t) offer(t, kHonestOffered);

    // Drain this round's service capacity in EDF order; a pop after the
    // item's deadline is a scrub, not a hit.
    const std::uint64_t served_at = now + kRoundUs;
    for (std::size_t s = 0; s < kServiceRate && queue.size() > 0; ++s) {
      auto item = queue.pop_earliest();
      if (!item.has_value()) break;
      const int tenant = *item / kRounds;
      const int arrival_round = *item % kRounds;
      const std::uint64_t item_deadline =
          (static_cast<std::uint64_t>(arrival_round) + kGraceRounds) *
          kRoundUs;
      if (served_at <= item_deadline) {
        hits[static_cast<std::size_t>(tenant)] += 1.0;
      }
    }
  }
  std::vector<double> rates(kTenants, 0.0);
  for (int t = 0; t < kTenants; ++t) {
    rates[static_cast<std::size_t>(t)] =
        offered[static_cast<std::size_t>(t)] == 0.0
            ? 0.0
            : hits[static_cast<std::size_t>(t)] /
                  offered[static_cast<std::size_t>(t)];
  }
  return rates;
}

TEST(DeadlineQueueFairness, FloodingTenantCannotStarveOthers) {
  const std::vector<double> with_drr = run_fairness_sim(true);
  const std::vector<double> without_drr = run_fairness_sim(false);
  const double jain_with = jain_index(with_drr);
  const double jain_without = jain_index(without_drr);

  // Honest tenants keep essentially their whole service rate...
  for (std::size_t t = 1; t < with_drr.size(); ++t) {
    EXPECT_GE(with_drr[t], 0.9) << "tenant " << t << " starved";
  }
  // ...so fairness holds the pinned bar, while the no-DRR control shows
  // the flood genuinely overwhelms this arrival pattern.
  EXPECT_GE(jain_with, 0.9);
  EXPECT_LT(jain_without, 0.6);
  EXPECT_GT(jain_with, jain_without);
}

}  // namespace
}  // namespace overcount::net

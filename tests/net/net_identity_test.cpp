// The acceptance-criterion identity test: for identical (seed, graph,
// query sequence), responses served OVER THE SOCKET PROTOCOL are
// bit-identical to responses served by a direct in-process
// EstimateService — the wire adds transport, not arithmetic.
//
// Setup that makes bit-identity well-defined (mirroring the service's own
// determinism contract): one shard, one connection, sequential requests
// (so dispatch order matches submission order), the same master seed on
// both sides, and a frozen injected clock (so age/latency stamps are zero
// on both sides rather than wall-clock noise). Doubles are compared as
// their IEEE-754 bit patterns, not with tolerances.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/service.hpp"
#include "serve/source.hpp"

namespace overcount::net {
namespace {

std::function<std::uint64_t()> frozen_clock() {
  auto us = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [us] { return us->load(std::memory_order_relaxed); };
}

ServiceConfig identity_config() {
  ServiceConfig config;
  config.threads = 2;
  config.queue_capacity = 16;
  config.lambda2_hint = 0.5;
  config.seed = 20260809;
  config.now_us = frozen_clock();
  return config;
}

struct Query {
  QueryKind kind;
  EstimateMethod method;
  double epsilon;
};

TEST(NetIdentity, SocketServedResponsesAreBitIdenticalToInProcess) {
  const Graph g = complete(24);

  // A mixed sequence with deliberate repeats (cache hits must match too)
  // and both kinds and methods.
  const std::vector<Query> queries = {
      {QueryKind::kSize, EstimateMethod::kRandomTour, 0.30},
      {QueryKind::kSize, EstimateMethod::kRandomTour, 0.30},       // hit
      {QueryKind::kDegreeSum, EstimateMethod::kRandomTour, 0.40},
      {QueryKind::kSize, EstimateMethod::kSampleCollide, 0.50},
      {QueryKind::kSize, EstimateMethod::kRandomTour, 0.25},       // tighter
      {QueryKind::kDegreeSum, EstimateMethod::kRandomTour, 0.40},  // hit
      {QueryKind::kSize, EstimateMethod::kSampleCollide, 0.50},    // hit
  };
  constexpr double kDelta = 0.2;

  // In-process reference: a fresh service, queried sequentially.
  std::vector<EstimateResponse> reference;
  {
    EstimateService service(static_graph_source(g), identity_config());
    for (const Query& q : queries) {
      EstimateRequest req;
      req.kind = q.kind;
      req.method = q.method;
      req.epsilon = q.epsilon;
      req.delta = kDelta;
      req.tenant = "identity";
      reference.push_back(service.query(req));
    }
  }

  // Socket-served: one shard, one connection, same seed and clock.
  NetServerConfig config;
  config.acceptors = 1;
  config.shards = 1;
  config.classes = {{"identity", 0.3, kDelta, 0, 1e9, 1e9}};
  config.service = identity_config();
  EstimateNetServer server(static_graph_source(g), config);

  NetClient client;
  ASSERT_TRUE(client.connect(server.port()));
  auto welcome = client.hello("identity", 0);
  ASSERT_TRUE(welcome.has_value());

  for (std::size_t i = 0; i < queries.size(); ++i) {
    RequestMsg req;
    req.request_id = i + 1;
    req.tenant_id = welcome->tenant_id;
    req.kind = static_cast<std::uint8_t>(queries[i].kind);
    req.method = static_cast<std::uint8_t>(queries[i].method);
    req.flags = kReqAllowCached | kReqExplicitTarget;
    req.epsilon = queries[i].epsilon;
    req.delta = kDelta;
    auto result = client.request(req);
    ASSERT_TRUE(result.has_value()) << "query " << i;
    ASSERT_FALSE(result->rejected) << "query " << i;
    const ResponseMsg& wire = result->response;
    const EstimateResponse& ref = reference[i];

    EXPECT_EQ(wire.status, static_cast<std::uint8_t>(ref.status))
        << "query " << i;
    // Bit-exact estimate and half-width: memcmp-grade equality, NaN-safe.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(wire.value),
              std::bit_cast<std::uint64_t>(ref.value))
        << "query " << i << ": " << wire.value << " vs " << ref.value;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(wire.epsilon),
              std::bit_cast<std::uint64_t>(ref.epsilon))
        << "query " << i;
    EXPECT_EQ(wire.walks, ref.walks) << "query " << i;
    EXPECT_EQ(wire.graph_version, ref.graph_version) << "query " << i;
    EXPECT_EQ((wire.flags & kRespCacheHit) != 0, ref.cache_hit)
        << "query " << i;
    EXPECT_EQ((wire.flags & kRespCoalesced) != 0, ref.coalesced)
        << "query " << i;
    // The frozen clock pins even the timing fields.
    EXPECT_EQ(wire.age_us, ref.age_us) << "query " << i;
    EXPECT_EQ(wire.latency_us, ref.latency_us) << "query " << i;
  }
}

/// Two runs over the socket with the same seed are bit-identical to each
/// other as well — the transport introduces no ordering nondeterminism for
/// a sequential client.
TEST(NetIdentity, RepeatedSocketRunsAreBitIdentical) {
  const Graph g = complete(20);
  auto run_once = [&g]() {
    NetServerConfig config;
    config.acceptors = 1;
    config.shards = 1;
    config.classes = {{"identity", 0.3, 0.2, 0, 1e9, 1e9}};
    config.service = identity_config();
    EstimateNetServer server(static_graph_source(g), config);
    NetClient client;
    EXPECT_TRUE(client.connect(server.port()));
    auto welcome = client.hello("identity", 0);
    EXPECT_TRUE(welcome.has_value());
    std::vector<std::uint64_t> bits;
    for (int i = 0; i < 4; ++i) {
      RequestMsg req;
      req.request_id = static_cast<std::uint64_t>(i + 1);
      req.tenant_id = welcome->tenant_id;
      req.kind = static_cast<std::uint8_t>(i % 2);
      req.method = 0;
      req.flags = kReqAllowCached | kReqExplicitTarget;
      req.epsilon = 0.3 + 0.05 * static_cast<double>(i);
      req.delta = 0.2;
      auto result = client.request(req);
      EXPECT_TRUE(result.has_value());
      if (result && !result->rejected) {
        bits.push_back(std::bit_cast<std::uint64_t>(result->response.value));
        bits.push_back(result->response.walks);
      }
    }
    return bits;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace overcount::net

// Wire-protocol contract:
//  (a) every frame type round-trips encode -> FrameReader -> decode
//      bit-exactly (doubles included);
//  (b) the decoder is incremental: a frame delivered one byte at a time
//      yields kNeedMore until the last byte, then exactly one frame;
//  (c) malformed input (bad magic, bad version, oversized length, unknown
//      type, truncated or trailing payload bytes, garbage streams) is
//      rejected without crashing, over-reading, or allocating payload
//      space — ASan runs of this suite double as the leak check.
#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace overcount::net {
namespace {

/// Feeds `bytes` to a fresh reader and expects exactly one frame.
Frame expect_one_frame(const std::string& bytes) {
  FrameReader reader;
  reader.append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(reader.next(frame), DecodeStatus::kFrame);
  Frame none;
  EXPECT_EQ(reader.next(none), DecodeStatus::kNeedMore);
  return frame;
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

TEST(Protocol, HelloRoundTrip) {
  HelloMsg msg{"tenant-0042", 2};
  const Frame frame = expect_one_frame(encode_hello(msg));
  ASSERT_EQ(frame.type(), FrameType::kHello);
  auto decoded = decode_hello(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tenant, msg.tenant);
  EXPECT_EQ(decoded->class_id, msg.class_id);
}

TEST(Protocol, WelcomeRoundTrip) {
  WelcomeMsg msg;
  msg.tenant_id = 77;
  msg.class_id = 1;
  msg.epsilon = 0.30000000000000004;  // not representable "nicely": bit test
  msg.delta = 0.2;
  msg.deadline_us = 2'000'000;
  msg.rate_per_sec = 1234.5;
  msg.burst = 99.25;
  const Frame frame = expect_one_frame(encode_welcome(msg));
  ASSERT_EQ(frame.type(), FrameType::kWelcome);
  auto decoded = decode_welcome(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tenant_id, msg.tenant_id);
  EXPECT_TRUE(bits_equal(decoded->epsilon, msg.epsilon));
  EXPECT_TRUE(bits_equal(decoded->rate_per_sec, msg.rate_per_sec));
  EXPECT_EQ(decoded->deadline_us, msg.deadline_us);
}

TEST(Protocol, RequestRoundTripPreservesFlags) {
  RequestMsg msg;
  msg.request_id = 0xDEADBEEFCAFE1234ULL;
  msg.tenant_id = 9;
  msg.kind = 1;
  msg.method = 0;
  msg.flags = kReqAllowCached | kReqHasDeadline | kReqExplicitTarget;
  msg.epsilon = 0.25;
  msg.delta = 0.05;
  msg.deadline_rel_us = 1'500'000;
  const Frame frame = expect_one_frame(encode_request(msg));
  ASSERT_EQ(frame.type(), FrameType::kRequest);
  auto decoded = decode_request(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request_id, msg.request_id);
  EXPECT_EQ(decoded->flags, msg.flags);
  EXPECT_EQ(decoded->deadline_rel_us, msg.deadline_rel_us);
  EXPECT_TRUE(bits_equal(decoded->epsilon, msg.epsilon));
}

TEST(Protocol, ResponseRoundTripIsBitExact) {
  // The identity contract rides on this: estimate values must cross the
  // wire with their exact IEEE-754 bit pattern, NaN payloads included.
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    ResponseMsg msg;
    msg.request_id = rng.next();
    msg.status = static_cast<std::uint8_t>(rng.next() % 4);
    msg.flags = static_cast<std::uint16_t>(rng.next() % 4);
    msg.value = std::bit_cast<double>(rng.next());
    msg.epsilon = rng.uniform();
    msg.walks = rng.next();
    msg.graph_version = rng.next();
    msg.age_us = rng.next();
    msg.latency_us = rng.next();
    msg.retry_after_us = rng.next();
    const Frame frame = expect_one_frame(encode_response(msg));
    auto decoded = decode_response(frame);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(bits_equal(decoded->value, msg.value)) << "iteration " << i;
    EXPECT_TRUE(bits_equal(decoded->epsilon, msg.epsilon));
    EXPECT_EQ(decoded->request_id, msg.request_id);
    EXPECT_EQ(decoded->walks, msg.walks);
    EXPECT_EQ(decoded->retry_after_us, msg.retry_after_us);
  }
}

TEST(Protocol, RejectAndErrorAndPingRoundTrip) {
  RejectMsg reject{42, static_cast<std::uint8_t>(RejectReason::kFairShare),
                   12'345};
  auto r = decode_reject(expect_one_frame(encode_reject(reject)));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->retry_after_us, 12'345u);
  EXPECT_EQ(r->reason, static_cast<std::uint8_t>(RejectReason::kFairShare));

  ErrorMsg error{kErrBadHello, "no such class"};
  auto e = decode_error(expect_one_frame(encode_error(error)));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->code, kErrBadHello);
  EXPECT_EQ(e->message, "no such class");

  auto ping = decode_ping(expect_one_frame(encode_ping({987654321})));
  ASSERT_TRUE(ping.has_value());
  EXPECT_EQ(ping->nonce, 987654321u);
}

TEST(Protocol, ByteAtATimeDelivery) {
  const std::string bytes = encode_request({1, 2, 0, 1, kReqAllowCached,
                                            0.5, 0.1, 0});
  FrameReader reader;
  Frame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    reader.append(&bytes[i], 1);
    EXPECT_EQ(reader.next(frame), DecodeStatus::kNeedMore)
        << "byte " << i << " of " << bytes.size();
  }
  reader.append(&bytes[bytes.size() - 1], 1);
  EXPECT_EQ(reader.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type(), FrameType::kRequest);
}

TEST(Protocol, TruncatedPayloadOfEveryPrefixNeverCrashes) {
  const std::vector<std::string> frames = {
      encode_hello({"tenant", 0}),
      encode_welcome({}),
      encode_request({}),
      encode_response({}),
      encode_reject({}),
      encode_error({1, "boom"}),
      encode_ping({3}),
  };
  for (const std::string& bytes : frames) {
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      FrameReader reader;
      reader.append(bytes.data(), cut);
      Frame frame;
      // A strict prefix is never a frame and never an error (the header,
      // when complete, is valid — the payload just has not arrived).
      EXPECT_EQ(reader.next(frame), DecodeStatus::kNeedMore);
    }
  }
}

TEST(Protocol, UndersizedAndOversizedPayloadsRejectedByDecoders) {
  // A syntactically valid frame whose payload is the wrong size for its
  // type must fail the typed decoder, not crash it.
  std::string bytes = encode_ping({7});
  Frame frame = expect_one_frame(bytes);
  frame.payload.resize(4);  // ping wants exactly 8 bytes
  EXPECT_FALSE(decode_ping(frame).has_value());
  frame.payload.assign(16, '\0');  // trailing garbage is also malformed
  EXPECT_FALSE(decode_ping(frame).has_value());
}

TEST(Protocol, OversizedLengthFieldIsTerminalWithoutAllocation) {
  std::string bytes = encode_ping({1});
  // Forge length = 1 GiB. The reader must flag the stream before waiting
  // for (or allocating) any payload.
  const std::uint32_t huge = 1u << 30;
  std::memcpy(&bytes[8], &huge, sizeof(huge));  // LE host assumption is
  ASSERT_LE(bytes.size(), 32u);                 // fine for the CI targets.
  FrameReader reader;
  reader.append(bytes.data(), kHeaderBytes);
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.next(frame, &error), DecodeStatus::kError);
  EXPECT_NE(error.find("64 KiB"), std::string::npos);
  // The reader stays broken: more bytes cannot resurrect the stream.
  reader.append(bytes.data(), bytes.size());
  EXPECT_EQ(reader.next(frame), DecodeStatus::kError);
}

TEST(Protocol, BadMagicBadVersionUnknownTypeAreTerminal) {
  const std::string good = encode_ping({1});
  for (const auto& [offset, value] : std::vector<std::pair<int, char>>{
           {0, 'X'},   // magic
           {4, 99},    // version
           {5, 0},     // type below range
           {5, 42},    // type above range
       }) {
    std::string bytes = good;
    bytes[static_cast<std::size_t>(offset)] = value;
    FrameReader reader;
    reader.append(bytes.data(), bytes.size());
    Frame frame;
    EXPECT_EQ(reader.next(frame), DecodeStatus::kError)
        << "offset " << offset;
  }
}

TEST(Protocol, GarbageStreamsNeverCrash) {
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    FrameReader reader;
    const std::size_t len = 1 + rng.next() % 512;
    std::string garbage(len, '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.next());
    // Random chunking exercises the incremental path.
    std::size_t at = 0;
    while (at < garbage.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.next() % 64, garbage.size() - at);
      reader.append(garbage.data() + at, chunk);
      at += chunk;
      Frame frame;
      // Draining until kNeedMore/kError must terminate; random bytes are
      // overwhelmingly rejected at the magic check.
      for (int spins = 0; spins < 64; ++spins) {
        const DecodeStatus st = reader.next(frame);
        if (st != DecodeStatus::kFrame) break;
      }
    }
  }
}

TEST(Protocol, HelloNameTooLongRejected) {
  HelloMsg msg{std::string(kMaxTenantNameBytes + 1, 'a'), 0};
  const Frame frame = expect_one_frame(encode_hello(msg));
  EXPECT_FALSE(decode_hello(frame).has_value());
  HelloMsg empty{"", 0};
  EXPECT_FALSE(decode_hello(expect_one_frame(encode_hello(empty))).has_value());
}

}  // namespace
}  // namespace overcount::net

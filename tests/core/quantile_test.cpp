#include "core/quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "sim/attributes.hpp"

namespace overcount {
namespace {

double true_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  return values[static_cast<std::size_t>(pos)];
}

TEST(QuantileEstimate, MedianOfNodeIdsIsNearMidpoint) {
  // Attribute = node id on a well-mixed overlay: the median must land
  // around n/2 (a direct read on sampler uniformity).
  Rng rng(1);
  const Graph g = largest_component(k_out_graph(2000, 3, rng));
  const auto est = estimate_median(
      g, 0, 8.0, [](NodeId v) { return static_cast<double>(v); }, 2000,
      rng);
  const double n = static_cast<double>(g.num_nodes());
  EXPECT_NEAR(est.value, n / 2.0, 0.08 * n);
  EXPECT_LE(est.lower, est.value);
  EXPECT_GE(est.upper, est.value);
  EXPECT_GT(est.hops, 0u);
}

TEST(QuantileEstimate, MatchesTruthOnAttributeDistribution) {
  Rng rng(2);
  const Graph g = largest_component(balanced_random_graph(2000, rng));
  const PeerAttributes attrs(9);
  std::vector<double> uploads;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    uploads.push_back(attrs.of(v).upload_mbps);
  for (double q : {0.25, 0.5, 0.9}) {
    const auto est = estimate_quantile(
        g, 0, 10.0, q,
        [&attrs](NodeId v) { return attrs.of(v).upload_mbps; }, 3000, rng);
    const double truth = true_quantile(uploads, q);
    // The DKW band is in cdf space; verify the truth lies inside the value
    // band (upload cdf is continuous enough here).
    EXPECT_LE(est.lower, truth * 1.05 + 0.1) << "q=" << q;
    EXPECT_GE(est.upper, truth * 0.95 - 0.1) << "q=" << q;
  }
}

TEST(QuantileEstimate, RadiusShrinksWithSamples) {
  Rng rng(3);
  const Graph g = complete(64);
  const auto small = estimate_median(
      g, 0, 3.0, [](NodeId v) { return static_cast<double>(v); }, 100, rng);
  const auto large = estimate_median(
      g, 0, 3.0, [](NodeId v) { return static_cast<double>(v); }, 6400,
      rng);
  EXPECT_NEAR(small.cdf_radius / large.cdf_radius, 8.0, 0.5);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

TEST(QuantileEstimate, ExtremeQuantilesClampToRange) {
  Rng rng(4);
  const Graph g = complete(32);
  const auto low = estimate_quantile(
      g, 0, 3.0, 0.0, [](NodeId v) { return static_cast<double>(v); }, 500,
      rng);
  const auto high = estimate_quantile(
      g, 0, 3.0, 1.0, [](NodeId v) { return static_cast<double>(v); }, 500,
      rng);
  EXPECT_LE(low.lower, low.value);
  EXPECT_GE(high.upper, high.value);
  EXPECT_LT(low.value, high.value);
}

TEST(QuantileEstimate, PreconditionsEnforced) {
  Rng rng(5);
  const Graph g = ring(16);
  const auto f = [](NodeId) { return 1.0; };
  EXPECT_THROW(estimate_quantile(g, 0, 1.0, -0.1, f, 100, rng),
               precondition_error);
  EXPECT_THROW(estimate_quantile(g, 0, 1.0, 0.5, f, 5, rng),
               precondition_error);
  EXPECT_THROW(estimate_quantile(g, 0, 1.0, 0.5, f, 100, rng, 1.5),
               precondition_error);
}

}  // namespace
}  // namespace overcount

// Exact-law tests for the Sample & Collide stopping statistic: the
// distribution of C_ell under ideal uniform sampling, computed by dynamic
// programming over (distinct, collisions) states, against (a) Monte-Carlo
// simulation through the production CollisionTracker and (b) the
// sufficiency/ML machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/sample_collide.hpp"
#include "util/rng.hpp"
#include "util/tests.hpp"

namespace overcount {
namespace {

// P(C_ell = m) for uniform sampling from n values: DP over the number of
// distinct values seen; a sample is new w.p. (n-k)/n, a collision w.p. k/n;
// stop at the ell-th collision.
std::vector<double> exact_collision_law(std::size_t n, std::size_t ell,
                                        std::size_t m_max) {
  // state[k][c] = P(after t samples, k distinct, c collisions), t = k + c.
  std::vector<std::vector<double>> state(
      m_max + 2, std::vector<double>(ell + 1, 0.0));
  std::vector<double> law(m_max + 1, 0.0);
  state[0][0] = 1.0;
  for (std::size_t t = 0; t < m_max; ++t) {
    // Iterate k downward so each (k, c) is consumed exactly once per step.
    std::vector<std::vector<double>> next(
        m_max + 2, std::vector<double>(ell + 1, 0.0));
    for (std::size_t k = 0; k <= std::min(t, m_max); ++k) {
      for (std::size_t c = 0; c + 1 <= ell; ++c) {
        if (k + c != t) continue;
        const double p = state[k][c];
        if (p == 0.0) continue;
        const double p_new = static_cast<double>(n - k) / n;
        const double p_old = static_cast<double>(k) / n;
        if (k + 1 <= m_max + 1) next[k + 1][c] += p * p_new;
        if (c + 1 == ell) {
          law[t + 1] += p * p_old;  // stopped at the ell-th collision
        } else {
          next[k][c + 1] += p * p_old;
        }
      }
    }
    state = std::move(next);
  }
  return law;
}

TEST(CollisionLaw, DpIsAProbabilityDistributionInTheLimit) {
  const auto law = exact_collision_law(50, 2, 200);
  double total = 0.0;
  for (double p : law) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(CollisionLaw, MatchesMonteCarloThroughCollisionTracker) {
  const std::size_t n = 60;
  const std::size_t ell = 3;
  const std::size_t m_max = 150;
  const auto law = exact_collision_law(n, ell, m_max);

  Rng rng(42);
  std::vector<double> observed(m_max + 1, 0.0);
  const int trials = 40000;
  for (int trial = 0; trial < trials; ++trial) {
    CollisionTracker tracker;
    while (tracker.collisions() < ell)
      tracker.feed(static_cast<NodeId>(rng.uniform_below(n)));
    if (tracker.samples() <= m_max) observed[tracker.samples()] += 1.0;
  }

  // Chi-square over the buckets with expected count >= 5.
  std::vector<double> obs;
  std::vector<double> expected;
  double obs_tail = 0.0;
  double exp_tail = 0.0;
  for (std::size_t m = 0; m <= m_max; ++m) {
    const double e = law[m] * trials;
    if (e >= 5.0) {
      obs.push_back(observed[m]);
      expected.push_back(e);
    } else {
      obs_tail += observed[m];
      exp_tail += e;
    }
  }
  if (exp_tail >= 5.0) {
    obs.push_back(obs_tail);
    expected.push_back(exp_tail);
  }
  const auto result = chi_square_test(obs, expected);
  EXPECT_GT(result.p_value, 1e-4)
      << "stat=" << result.statistic << " dof=" << result.dof;
}

TEST(CollisionLaw, ExpectationMatchesSqrtTwoEllN) {
  // E[C_ell] -> sqrt(2 ell N) * E[sqrt(Gamma_ell)]/sqrt(ell)... for large
  // N the first-order scaling E[C_ell] ~ sqrt(2 ell N) holds within a few
  // percent already at N = 2000 for moderate ell.
  const std::size_t n = 2000;
  for (std::size_t ell : {2u, 5u, 10u}) {
    const std::size_t m_max = 1200;
    const auto law = exact_collision_law(n, ell, m_max);
    double mean = 0.0;
    double mass = 0.0;
    for (std::size_t m = 0; m <= m_max; ++m) {
      mean += static_cast<double>(m) * law[m];
      mass += law[m];
    }
    ASSERT_GT(mass, 0.999);
    const double predicted = std::sqrt(2.0 * ell * n);
    EXPECT_NEAR(mean / predicted, 1.0, 0.08) << "ell=" << ell;
  }
}

TEST(CollisionLaw, MlEstimateIsConsistentUnderTheExactLaw) {
  // Feed the exact law through the ML estimator: the law-weighted mean of
  // the ML estimate should track n (asymptotic unbiasedness).
  const std::size_t n = 3000;
  const std::size_t ell = 10;
  const std::size_t m_max = 1500;
  const auto law = exact_collision_law(n, ell, m_max);
  double mean_ml = 0.0;
  double mass = 0.0;
  for (std::size_t m = ell + 2; m <= m_max; ++m) {
    if (law[m] <= 0.0) continue;
    mean_ml += law[m] * sc_ml_estimate(m, ell);
    mass += law[m];
  }
  ASSERT_GT(mass, 0.999);
  EXPECT_NEAR(mean_ml / n, 1.0, 0.08);
}

TEST(CollisionLaw, SmallPopulationEdgeCase) {
  // n = 2, ell = 1: P(C=2) = 1/2, P(C=3) = 1/2 * 1 ... third sample always
  // collides when both values were seen; compute explicitly:
  // C=2: second sample equals first (p=1/2).
  // C=3: second new (1/2), third collides with certainty... p = 1/2 * 1.
  const auto law = exact_collision_law(2, 1, 10);
  EXPECT_NEAR(law[2], 0.5, 1e-12);
  EXPECT_NEAR(law[3], 0.5, 1e-12);
  EXPECT_NEAR(law[4], 0.0, 1e-12);
}

}  // namespace
}  // namespace overcount

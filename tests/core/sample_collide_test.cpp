#include "core/sample_collide.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"
#include "util/tests.hpp"

namespace overcount {
namespace {

TEST(CollisionTracker, CountsRepeatsIncludingMultiples) {
  CollisionTracker t;
  EXPECT_FALSE(t.feed(1));
  EXPECT_FALSE(t.feed(2));
  EXPECT_TRUE(t.feed(1));   // first collision
  EXPECT_TRUE(t.feed(1));   // third occurrence = second collision
  EXPECT_FALSE(t.feed(3));
  EXPECT_EQ(t.samples(), 5u);
  EXPECT_EQ(t.collisions(), 2u);
  EXPECT_EQ(t.distinct(), 3u);
  t.reset();
  EXPECT_EQ(t.samples(), 0u);
  EXPECT_FALSE(t.feed(1));
}

TEST(ScScore, SingleSignChangeAtMlRoot) {
  // The likelihood rises up to the ML root and falls after it: the score is
  // positive below the root and negative above it (it decays back toward 0
  // from below, so it is not globally monotone).
  const std::uint64_t samples = 100;
  const std::uint64_t collisions = 10;
  const double ml = sc_ml_estimate(samples, collisions);
  for (double factor : {0.3, 0.6, 0.9})
    EXPECT_GT(sc_score(factor * ml, samples, collisions), 0.0) << factor;
  for (double factor : {1.1, 2.0, 8.0})
    EXPECT_LT(sc_score(factor * ml, samples, collisions), 0.0) << factor;
}

TEST(ScScore, ZeroAtMlEstimate) {
  const std::uint64_t samples = 150;
  const std::uint64_t collisions = 12;
  const double ml = sc_ml_estimate(samples, collisions);
  EXPECT_NEAR(sc_score(ml, samples, collisions), 0.0, 1e-6);
}

TEST(ScLogLikelihood, MaximisedAtMl) {
  const std::uint64_t samples = 80;
  const std::uint64_t collisions = 6;
  const double ml = sc_ml_estimate(samples, collisions);
  const double at_ml = sc_log_likelihood(ml, samples, collisions);
  EXPECT_GT(at_ml, sc_log_likelihood(ml * 0.7, samples, collisions));
  EXPECT_GT(at_ml, sc_log_likelihood(ml * 1.4, samples, collisions));
}

TEST(ScBracket, ContainsMlAndIsTight) {
  for (std::uint64_t samples : {50u, 200u, 1000u, 5000u}) {
    for (std::uint64_t collisions : {1u, 5u, 20u}) {
      if (samples <= collisions + 1) continue;
      const auto b = sc_bracket(samples, collisions);
      const double ml = sc_ml_estimate(samples, collisions);
      EXPECT_LE(b.n_minus, ml + 1e-6)
          << "C=" << samples << " l=" << collisions;
      EXPECT_GE(b.n_plus, ml - 1e-6)
          << "C=" << samples << " l=" << collisions;
      // The brackets differ by exactly (D-1)/2 where D = C - l: relative to
      // N ~ C^2/(2l) this is O(sqrt(l/N)) -> 0 (Remark 2).
      const double spread = b.n_plus - b.n_minus;
      const double d = static_cast<double>(samples - collisions);
      if (b.n_minus > d + 1e-9) {  // away from the clamp at N = D
        EXPECT_NEAR(spread, (d - 1.0) / 2.0, 1e-6);
      }
    }
  }
}

TEST(ScSimpleEstimate, ClosedForm) {
  EXPECT_DOUBLE_EQ(sc_simple_estimate(100, 2), 2500.0);
  EXPECT_DOUBLE_EQ(sc_simple_estimate(10, 1), 50.0);
  EXPECT_THROW(sc_simple_estimate(10, 0), precondition_error);
}

TEST(ScSimpleEstimate, CloseToMlForLargeSamples) {
  // Remark 2: C^2/(2l) and the ML estimate differ by O(sqrt(N)).
  const std::uint64_t samples = 4000;
  const std::uint64_t collisions = 40;
  const double ml = sc_ml_estimate(samples, collisions);
  const double simple = sc_simple_estimate(samples, collisions);
  EXPECT_NEAR(simple / ml, 1.0, 0.05);
}

TEST(ScMlEstimate, DegenerateAllCollisions) {
  // Two samples, one collision: D = 1; the likelihood n^{-2}(n) = 1/n is
  // decreasing, so the ML sits at the smallest admissible population.
  EXPECT_DOUBLE_EQ(sc_ml_estimate(2, 1), 1.0);
}

TEST(ScMlEstimate, PreconditionsEnforced) {
  EXPECT_THROW(sc_ml_estimate(5, 0), precondition_error);
  EXPECT_THROW(sc_ml_estimate(5, 5), precondition_error);
  EXPECT_THROW(sc_score(0.5, 10, 2), precondition_error);
}

// Feeds exact uniform samples (no CTRW error) through the collision logic
// and checks the statistical claims of Section 4.2-4.3.
class IdealisedSampleCollide : public ::testing::TestWithParam<std::size_t> {
 protected:
  static std::uint64_t run_until_collisions(std::size_t n, std::size_t ell,
                                            Rng& rng) {
    CollisionTracker t;
    while (t.collisions() < ell)
      t.feed(static_cast<NodeId>(rng.uniform_below(n)));
    return t.samples();
  }
};

TEST_P(IdealisedSampleCollide, RelativeMseNearOneOverTwoEll) {
  const std::size_t ell = GetParam();
  const std::size_t n = 20000;
  Rng rng(1000 + ell);
  RunningStats rel_err_sq;
  const int trials = ell >= 50 ? 150 : 400;
  for (int trial = 0; trial < trials; ++trial) {
    const auto c = run_until_collisions(n, ell, rng);
    const double est = sc_simple_estimate(c, ell);
    const double rel = est / static_cast<double>(n) - 1.0;
    rel_err_sq.add(rel * rel);
  }
  // Prop. 3: N_hat/N => (E_1+...+E_ell)/ell, so the relative MSE tends to
  // Var(Erlang(ell,1))/ell^2 = 1/ell (matching Table 1: 0.1 at ell=10 and
  // 0.01 at ell=100).
  const double predicted = 1.0 / static_cast<double>(ell);
  // MSE concentrates slowly; accept within a factor [0.5, 2].
  EXPECT_GT(rel_err_sq.mean(), 0.5 * predicted) << "ell=" << ell;
  EXPECT_LT(rel_err_sq.mean(), 2.0 * predicted) << "ell=" << ell;
}

TEST_P(IdealisedSampleCollide, CollisionCountMatchesProposition3Law) {
  // Prop. 3: C_ell / sqrt(N) converges to sqrt(2 Gamma(ell)) where
  // Gamma(ell) is Erlang(ell, 1); P(C/sqrt(N) <= x) = P(Gamma <= x^2/2).
  const std::size_t ell = GetParam();
  if (ell > 20) GTEST_SKIP() << "law check only needs small ell";
  const std::size_t n = 40000;
  Rng rng(2000 + ell);
  std::vector<double> normalised;
  for (int trial = 0; trial < 400; ++trial)
    normalised.push_back(run_until_collisions(n, ell, rng) /
                         std::sqrt(static_cast<double>(n)));
  const auto ks = ks_test(std::move(normalised), [ell](double x) {
    return x <= 0.0 ? 0.0
                    : gamma_p(static_cast<double>(ell), x * x / 2.0);
  });
  EXPECT_GT(ks.p_value, 1e-4) << "ell=" << ell << " D=" << ks.statistic;
}

INSTANTIATE_TEST_SUITE_P(Ells, IdealisedSampleCollide,
                         ::testing::Values(1, 5, 10, 100));

TEST(SampleCollideEstimator, EstimatesSizeOnBalancedGraph) {
  Rng rng(3001);
  const Graph g = largest_component(balanced_random_graph(5000, rng));
  const double n = static_cast<double>(g.num_nodes());
  SampleCollideEstimator estimator(g, 0, 10.0, 10, rng.split());
  RunningStats values;
  for (int trial = 0; trial < 30; ++trial)
    values.add(estimator.estimate().simple);
  // Relative std ~ 1/sqrt(2*10) ~ 0.22; mean of 30 trials within ~3 se.
  EXPECT_NEAR(values.mean(), n, 4.0 * values.stddev() / std::sqrt(30.0));
}

TEST(SampleCollideEstimator, MlAndBracketsConsistentPerRun) {
  Rng rng(3002);
  const Graph g = largest_component(balanced_random_graph(2000, rng));
  SampleCollideEstimator estimator(g, 0, 8.0, 5, rng.split());
  for (int trial = 0; trial < 10; ++trial) {
    const auto e = estimator.estimate();
    EXPECT_LE(e.n_minus, e.ml + 1e-6);
    EXPECT_GE(e.n_plus, e.ml - 1e-6);
    EXPECT_GT(e.samples, 5u);
    EXPECT_GT(e.hops, 0u);
    EXPECT_EQ(e.replies, e.samples);
  }
}

TEST(SampleCollideEstimator, CostScalesAsSqrtEll) {
  // Section 4.3 / Table 1: E[C_ell] ~ sqrt(2 ell N); going from ell=10 to
  // ell=100 multiplies the per-run cost by ~sqrt(10) ~ 3.16 (paper: 3.27).
  Rng rng(3003);
  const Graph g = largest_component(balanced_random_graph(4000, rng));
  RunningStats cost10;
  RunningStats cost100;
  SampleCollideEstimator e10(g, 0, 8.0, 10, rng.split());
  SampleCollideEstimator e100(g, 0, 8.0, 100, rng.split());
  for (int trial = 0; trial < 12; ++trial) {
    cost10.add(static_cast<double>(e10.estimate().samples));
    cost100.add(static_cast<double>(e100.estimate().samples));
  }
  const double ratio = cost100.mean() / cost10.mean();
  EXPECT_GT(ratio, 2.4);
  EXPECT_LT(ratio, 4.2);
}

TEST(ScExpectedMessages, Formula) {
  EXPECT_NEAR(sc_expected_messages(10000, 2, 3.0, 8.0),
              std::sqrt(2.0 * 2 * 10000) * 3.0 * 8.0, 1e-9);
  EXPECT_THROW(sc_expected_messages(0.0, 2, 3.0, 8.0), precondition_error);
}

}  // namespace
}  // namespace overcount

// Distributional regression tests for the interleaved walk kernel: beyond
// bit-equivalence with the scalar path, the kernel-driven draws must obey
// the laws the estimators rest on. On K_{5,11} — degree classes 11 and 5,
// both non-powers-of-two, so a modulo-bias bug in neighbour selection
// cannot hide — kernel-driven random_neighbor must be uniform per degree
// class (chi-square) and the CTRW sojourns must be Exp(d_v) per class (KS),
// exactly the Section 4.1 premises of Lemma 1.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/generators.hpp"
#include "runtime/parallel_runner.hpp"
#include "util/tests.hpp"
#include "walk/kernel.hpp"

namespace overcount {
namespace {

/// Records one walk's full trajectory: the node sequence (origin first) and
/// the per-visit sojourn times, in event order. sojourns[i] was spent at
/// nodes[i]; the last sojourn of a walk is truncated by the timer.
struct TraceProbe {
  static constexpr bool enabled = true;
  std::vector<std::uint64_t>* nodes;
  std::vector<double>* sojourns;
  void walk_begin(std::uint64_t origin) { nodes->push_back(origin); }
  void on_visit(std::uint64_t node) { nodes->push_back(node); }
  void on_sojourn(double dt) { sojourns->push_back(dt); }
  void on_reject() {}
  void on_collision(std::uint64_t) {}
  void tour_end(std::uint64_t, bool) {}
  void sample_end(std::uint64_t) {}
};

static_assert(WalkProbe<TraceProbe>);

struct Traces {
  std::vector<std::vector<std::uint64_t>> nodes;
  std::vector<std::vector<double>> sojourns;
};

/// Runs `walks` CTRW sampling walks through ctrw_kernel at full interleave
/// width and returns every trajectory.
Traces run_kernel_traces(const Graph& g, NodeId origin, std::size_t walks,
                         double timer, std::uint64_t seed) {
  Traces traces;
  traces.nodes.resize(walks);
  traces.sojourns.resize(walks);
  std::vector<TraceProbe> probes;
  probes.reserve(walks);
  for (std::size_t i = 0; i < walks; ++i)
    probes.push_back({&traces.nodes[i], &traces.sojourns[i]});
  auto streams = derive_streams(seed, walks);
  std::vector<SampleResult> out(walks);
  ctrw_kernel(g, origin, timer, std::span<Rng>(streams),
              std::span<SampleResult>(out), kDefaultKernelWidth,
              std::span<TraceProbe>(probes));
  return traces;
}

constexpr std::size_t kLeft = 5;    // nodes 0..4, degree 11
constexpr std::size_t kRight = 11;  // nodes 5..15, degree 5
constexpr std::size_t kWalks = 600;
constexpr double kTimer = 8.0;
constexpr std::uint64_t kSeed = 0x5EEDC0DE;
constexpr double kAlpha = 1e-3;

std::size_t neighbor_rank(const Graph& g, NodeId u, NodeId v) {
  const auto nbrs = g.neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  EXPECT_TRUE(it != nbrs.end() && *it == v);
  return static_cast<std::size_t>(it - nbrs.begin());
}

TEST(KernelStatistical, RandomNeighborUniformPerDegreeClass) {
  const Graph g = complete_bipartite(kLeft, kRight);
  const auto traces = run_kernel_traces(g, 0, kWalks, kTimer, kSeed);

  // Pool the neighbour rank of every transition, split by the degree class
  // of the departing node. Left nodes (degree 11) all see the same sorted
  // neighbour list, so rank pooling is exact; same for right (degree 5).
  std::vector<std::size_t> left_ranks(kRight, 0), right_ranks(kLeft, 0);
  for (const auto& walk : traces.nodes) {
    for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
      const auto u = static_cast<NodeId>(walk[i]);
      const auto v = static_cast<NodeId>(walk[i + 1]);
      if (u < kLeft)
        ++left_ranks[neighbor_rank(g, u, v)];
      else
        ++right_ranks[neighbor_rank(g, u, v)];
    }
  }
  const std::size_t left_total =
      std::accumulate(left_ranks.begin(), left_ranks.end(), std::size_t{0});
  const std::size_t right_total =
      std::accumulate(right_ranks.begin(), right_ranks.end(), std::size_t{0});
  ASSERT_GT(left_total, 5000u);   // enough transitions for the test to bite
  ASSERT_GT(right_total, 5000u);

  const auto left = chi_square_uniform(left_ranks);
  EXPECT_GT(left.p_value, kAlpha)
      << "degree-11 class: chi2=" << left.statistic << " over " << left_total
      << " transitions";
  const auto right = chi_square_uniform(right_ranks);
  EXPECT_GT(right.p_value, kAlpha)
      << "degree-5 class: chi2=" << right.statistic << " over " << right_total
      << " transitions";
}

TEST(KernelStatistical, CtrwSojournsExponentialPerDegreeClass) {
  const Graph g = complete_bipartite(kLeft, kRight);
  const auto traces = run_kernel_traces(g, 0, kWalks, kTimer, kSeed + 1);

  // sojourns[i] was drawn Exp(d(nodes[i])); the walk's final sojourn is
  // truncated by the dying timer (the probe sees min(sojourn, remaining)),
  // so drop it before testing the law.
  std::vector<double> deg11, deg5;
  for (std::size_t w = 0; w < traces.nodes.size(); ++w) {
    const auto& nodes = traces.nodes[w];
    const auto& sojourns = traces.sojourns[w];
    ASSERT_EQ(nodes.size(), sojourns.size());
    for (std::size_t i = 0; i + 1 < sojourns.size(); ++i) {
      if (nodes[i] < kLeft)
        deg11.push_back(sojourns[i]);
      else
        deg5.push_back(sojourns[i]);
    }
  }
  ASSERT_GT(deg11.size(), 5000u);
  ASSERT_GT(deg5.size(), 5000u);

  const auto ks11 = ks_test(
      deg11, [](double x) { return 1.0 - std::exp(-11.0 * x); });
  EXPECT_GT(ks11.p_value, kAlpha)
      << "degree-11 sojourns: D=" << ks11.statistic << " n=" << deg11.size();
  const auto ks5 = ks_test(
      deg5, [](double x) { return 1.0 - std::exp(-5.0 * x); });
  EXPECT_GT(ks5.p_value, kAlpha)
      << "degree-5 sojourns: D=" << ks5.statistic << " n=" << deg5.size();
}

}  // namespace
}  // namespace overcount

#include <gtest/gtest.h>

#include <cmath>

#include "core/random_tour.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace overcount {
namespace {

class CtrwTourUnbiased
    : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(CtrwTourUnbiased, ReturnTimeTimesDegreeIsN) {
  // Renewal-reward: E[d_i * cycle time of the CTRW] = N.
  Rng rng(601);
  const Graph g = largest_component(GetParam().make(rng));
  const double n = static_cast<double>(g.num_nodes());
  RunningStats stats;
  const int tours = 4000;
  for (int t = 0; t < tours; ++t)
    stats.add(ctrw_return_time_tour(g, 0, rng).value);
  const double se = stats.stddev() / std::sqrt(double(tours));
  EXPECT_NEAR(stats.mean(), n, 5.0 * se + 1e-9) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, CtrwTourUnbiased,
    ::testing::ValuesIn(testing::estimator_graph_cases()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(CtrwTour, SameMessageCostAsDiscreteTour) {
  // The continuous clock changes the estimate's dispersion, not the number
  // of messages: step distributions coincide (same embedded chain).
  Rng rng(602);
  const Graph g = largest_component(balanced_random_graph(150, rng));
  RunningStats discrete_steps;
  RunningStats continuous_steps;
  for (int t = 0; t < 3000; ++t) {
    discrete_steps.add(
        static_cast<double>(random_tour_size(g, 0, rng).steps));
    continuous_steps.add(
        static_cast<double>(ctrw_return_time_tour(g, 0, rng).steps));
  }
  const double se = std::sqrt(discrete_steps.variance() / 3000.0 +
                              continuous_steps.variance() / 3000.0);
  EXPECT_NEAR(discrete_steps.mean(), continuous_steps.mean(),
              5.0 * se + 1e-9);
}

TEST(CtrwTour, SojournNoiseAddsExactlyMeanReturnTime) {
  // On a regular graph, d_i * counter = T (the discrete return time) and
  // d_i * ctrw time = sum of T iid Exp(1) variables, so by the
  // compound-sum variance formula
  //   Var(continuous) = Var(T) + E[T] * Var(Exp(1)) = Var(discrete) + E[T].
  Rng rng(603);
  const Graph g = complete(24);
  RunningStats discrete;
  RunningStats continuous;
  const int tours = 60000;
  for (int t = 0; t < tours; ++t) {
    discrete.add(random_tour_size(g, 0, rng).value);
    continuous.add(ctrw_return_time_tour(g, 0, rng).value);
  }
  const double expected_gap = 24.0;  // E[T] = N on a complete graph... Kac:
  // E[T] = 2|E|/d_i = 24 here (n * (n-1) / (n-1)).
  const double measured_gap = continuous.variance() - discrete.variance();
  // Variance differences concentrate slowly; accept the right order and
  // sign rather than tight equality.
  EXPECT_GT(measured_gap, 0.2 * expected_gap);
  EXPECT_LT(measured_gap, 5.0 * expected_gap + 30.0);
}

TEST(CtrwTour, RequiresConnectedOrigin) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  Rng rng(604);
  EXPECT_THROW(ctrw_return_time_tour(b.build(), 2, rng),
               precondition_error);
}

}  // namespace
}  // namespace overcount

// Tests for the architecture-specific baselines (Section 2.1): DHT
// identifier-density estimation and spanning-tree aggregation — plus the
// adaptive timer bootstrap of Section 4.1.
#include <gtest/gtest.h>

#include <cmath>

#include "core/adaptive.hpp"
#include "core/dht_density.hpp"
#include "core/tree_aggregate.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace overcount {
namespace {

TEST(DhtDensity, SuccessorsAreClockwiseSorted) {
  Rng rng(1);
  const DhtIdSpace space(100, rng);
  const auto succ = space.successors(1ULL << 60, 10);
  ASSERT_EQ(succ.size(), 10u);
  // Clockwise distances from the query must be strictly increasing.
  for (std::size_t i = 1; i < succ.size(); ++i)
    EXPECT_GT(succ[i] - (1ULL << 60), succ[i - 1] - (1ULL << 60));
}

TEST(DhtDensity, EstimateUnbiasedOverRepeats) {
  Rng rng(2);
  const std::size_t n = 5000;
  RunningStats stats;
  for (int trial = 0; trial < 60; ++trial) {
    const DhtIdSpace space(n, rng);
    stats.add(space.estimate_size(rng.next(), 50));
  }
  const double se = stats.stddev() / std::sqrt(60.0);
  EXPECT_NEAR(stats.mean(), static_cast<double>(n), 5.0 * se + 0.05 * n);
}

TEST(DhtDensity, MoreSuccessorsTightenTheEstimate) {
  Rng rng(3);
  const std::size_t n = 5000;
  RunningStats k8;
  RunningStats k128;
  for (int trial = 0; trial < 60; ++trial) {
    const DhtIdSpace space(n, rng);
    const std::uint64_t from = rng.next();
    k8.add(space.estimate_size(from, 8) / n);
    k128.add(space.estimate_size(from, 128) / n);
  }
  // Relative variance ~ 1/k.
  EXPECT_LT(k128.variance(), 0.5 * k8.variance());
}

TEST(DhtDensity, PreconditionsEnforced) {
  Rng rng(4);
  EXPECT_THROW(DhtIdSpace(1, rng), precondition_error);
  const DhtIdSpace space(10, rng);
  EXPECT_THROW(space.successors(0, 10), precondition_error);
  EXPECT_THROW(space.successors(0, 0), precondition_error);
}

TEST(TreeAggregate, ExactCountOnConnectedGraph) {
  Rng rng(5);
  const Graph g = largest_component(balanced_random_graph(500, rng));
  const auto r = tree_count(g, 0);
  EXPECT_DOUBLE_EQ(r.value, static_cast<double>(g.num_nodes()));
  EXPECT_EQ(r.tree_nodes, g.num_nodes());
  EXPECT_GT(r.tree_depth, 0u);
}

TEST(TreeAggregate, CountsOnlyOwnComponent) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(tree_count(g, 0).value, 3.0);
  EXPECT_DOUBLE_EQ(tree_count(g, 3).value, 2.0);
  EXPECT_DOUBLE_EQ(tree_count(g, 5).value, 1.0);
}

TEST(TreeAggregate, GeneralSumAndCostModel) {
  const Graph g = star(9);
  const auto r = tree_aggregate(
      g, 0, [&g](NodeId v) { return static_cast<double>(g.degree(v)); });
  EXPECT_DOUBLE_EQ(r.value, static_cast<double>(g.total_degree()));
  // Cost: flood over 2|E| directed edges + one convergecast per non-root.
  EXPECT_EQ(r.messages, 2 * g.num_edges() + (g.num_nodes() - 1));
  EXPECT_EQ(r.tree_depth, 1u);
}

TEST(AdaptiveSampleCollide, ConvergesToTruthFromTinyTimer) {
  Rng rng(6);
  const Graph g = largest_component(balanced_random_graph(3000, rng));
  const double n = static_cast<double>(g.num_nodes());
  const auto r = adaptive_sample_collide(g, 0, 20, rng, /*initial=*/0.25);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.rounds, 1u);
  EXPECT_NEAR(r.estimate, n, 0.5 * n);
  EXPECT_GT(r.timer, 0.25);
}

TEST(AdaptiveSampleCollide, TrajectoryIncreasesWhileUnderBudgeted) {
  // Under-budgeted timers keep samples near the origin, inflating collision
  // rates and deflating the estimate — the trajectory should climb. Use
  // ell = 100 so the sqrt(2) per-doubling drift dominates the estimator's
  // own 1/sqrt(ell) = 10% noise.
  Rng rng(7);
  const Graph g = ring(2000);  // slow mixing: small timers are badly biased
  const auto r = adaptive_sample_collide(g, 0, 100, rng, 0.5, 0.15, 10);
  ASSERT_GE(r.trajectory.size(), 3u);
  EXPECT_LT(r.trajectory.front(), 0.8 * r.trajectory.back());
  // The distinct-count guard must keep the flat under-budgeted bottom of
  // the ramp from faking convergence.
  EXPECT_FALSE(r.converged);
}

TEST(AdaptiveSampleCollide, PreconditionsEnforced) {
  Rng rng(8);
  const Graph g = ring(16);
  EXPECT_THROW(adaptive_sample_collide(g, 0, 5, rng, 0.0),
               precondition_error);
  EXPECT_THROW(adaptive_sample_collide(g, 0, 5, rng, 1.0, -0.1),
               precondition_error);
  EXPECT_THROW(adaptive_sample_collide(g, 0, 5, rng, 1.0, 0.1, 1),
               precondition_error);
}

}  // namespace
}  // namespace overcount

#include "core/monitor.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace overcount {
namespace {

// Synthetic estimate stream: truth * (1 + rel_std * gaussian-ish noise).
double noisy(double truth, double rel_std, Rng& rng) {
  // Sum of 12 uniforms - 6 approximates a standard normal.
  double z = -6.0;
  for (int i = 0; i < 12; ++i) z += rng.uniform();
  return truth * (1.0 + rel_std * z);
}

TEST(SizeMonitor, SmoothsSteadyState) {
  Rng rng(1);
  MonitorConfig config;
  config.window = 50;
  config.estimate_rel_std = 0.1;
  SizeMonitor monitor(config);
  RunningStats raw;
  RunningStats smoothed;
  for (int i = 0; i < 500; ++i) {
    const double e = noisy(10000.0, 0.1, rng);
    raw.add(e);
    monitor.feed(e);
    if (i >= 50) smoothed.add(monitor.value());
  }
  EXPECT_NEAR(monitor.value(), 10000.0, 500.0);
  EXPECT_LT(smoothed.variance(), 0.1 * raw.variance());
  EXPECT_EQ(monitor.changes_detected(), 0u);
}

TEST(SizeMonitor, DetectsCatastrophicDrop) {
  Rng rng(2);
  MonitorConfig config;
  config.window = 50;
  config.estimate_rel_std = 0.1;
  SizeMonitor monitor(config);
  for (int i = 0; i < 200; ++i) monitor.feed(noisy(100000.0, 0.1, rng));
  // Population halves: the monitor must reset within a handful of runs, not
  // a whole window.
  int detected_after = -1;
  for (int i = 0; i < 30; ++i) {
    if (monitor.feed(noisy(50000.0, 0.1, rng)) && detected_after < 0)
      detected_after = i + 1;
  }
  ASSERT_GT(detected_after, 0);
  EXPECT_LE(detected_after, 6);
  EXPECT_NEAR(monitor.value(), 50000.0, 10000.0);
  EXPECT_EQ(monitor.changes_detected(), 1u);
}

TEST(SizeMonitor, DetectsFlashCrowd) {
  // +80% flash crowd: an 8-sigma jump for the default 10% estimator noise.
  Rng rng(3);
  SizeMonitor monitor;
  for (int i = 0; i < 100; ++i) monitor.feed(noisy(10000.0, 0.1, rng));
  for (int i = 0; i < 10; ++i) monitor.feed(noisy(18000.0, 0.1, rng));
  EXPECT_EQ(monitor.changes_detected(), 1u);
  EXPECT_NEAR(monitor.value(), 18000.0, 2000.0);
}

TEST(SizeMonitor, SingleOutlierDoesNotTrigger) {
  // The winsorised z (clamped at z_clamp = 3) means one spike contributes
  // at most z_clamp - k = 2 to the CUSUM — below the threshold of 5.
  Rng rng(4);
  SizeMonitor monitor;
  for (int i = 0; i < 100; ++i) monitor.feed(noisy(10000.0, 0.1, rng));
  EXPECT_FALSE(monitor.feed(25000.0));  // lone spike
  for (int i = 0; i < 20; ++i) monitor.feed(noisy(10000.0, 0.1, rng));
  EXPECT_EQ(monitor.changes_detected(), 0u);
  EXPECT_NEAR(monitor.value(), 10000.0, 600.0);
}

TEST(SizeMonitor, TracksGradualDriftWithoutFiring) {
  // A ramp slower than the detection band should be followed by the window
  // without a declared "change".
  Rng rng(5);
  MonitorConfig config;
  config.window = 20;
  config.estimate_rel_std = 0.1;
  SizeMonitor monitor(config);
  double truth = 10000.0;
  for (int i = 0; i < 100; ++i) monitor.feed(noisy(truth, 0.1, rng));
  for (int i = 0; i < 400; ++i) {
    truth *= 1.001;  // +0.1% per run
    monitor.feed(noisy(truth, 0.1, rng));
  }
  EXPECT_EQ(monitor.changes_detected(), 0u);
  EXPECT_NEAR(monitor.value(), truth, 0.1 * truth);
}

TEST(SizeMonitor, PreconditionsEnforced) {
  MonitorConfig bad;
  bad.window = 0;
  EXPECT_THROW(SizeMonitor{bad}, precondition_error);
  SizeMonitor monitor;
  EXPECT_THROW(monitor.feed(0.0), precondition_error);
  EXPECT_THROW(monitor.value(), precondition_error);
}

}  // namespace
}  // namespace overcount

#include "core/aggregate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace overcount {
namespace {

TEST(EstimateSum, DegreeSumIsTotalDegree) {
  Rng rng(1);
  const Graph g = largest_component(balanced_random_graph(300, rng));
  const auto est = estimate_sum(
      g, 0, [&g](NodeId v) { return static_cast<double>(g.degree(v)); },
      2000, rng);
  EXPECT_NEAR(est.value, static_cast<double>(g.total_degree()),
              5.0 * est.standard_error + 1e-9);
  EXPECT_EQ(est.tours, 2000u);
  EXPECT_GT(est.messages, 0u);
}

TEST(EstimateCount, HighDegreePeers) {
  Rng rng(2);
  const Graph g = largest_component(barabasi_albert(400, 3, rng));
  double truth = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (g.degree(v) >= 10) truth += 1.0;
  const auto est = estimate_count(
      g, 0, [&g](NodeId v) { return g.degree(v) >= 10; }, 3000, rng);
  EXPECT_NEAR(est.value, truth, 5.0 * est.standard_error + 1e-9);
}

TEST(EstimateMean, UploadCapacityScenario) {
  // The paper's motivating live-streaming statistic: average upload
  // capacity per peer.
  Rng rng(3);
  const Graph g = largest_component(balanced_random_graph(250, rng));
  std::vector<double> capacity(g.num_nodes());
  double truth_sum = 0.0;
  for (auto& c : capacity) {
    c = 1.0 + 9.0 * rng.uniform();
    truth_sum += c;
  }
  const double truth_mean = truth_sum / static_cast<double>(g.num_nodes());
  const auto est = estimate_mean(
      g, 0, [&capacity](NodeId v) { return capacity[v]; }, 1500, rng);
  // Ratio estimator: tolerance via its reported se (plus slack for the
  // small ratio bias).
  EXPECT_NEAR(est.value, truth_mean,
              5.0 * est.standard_error + 0.02 * truth_mean);
}

TEST(EstimateMean, ConstantFunctionIsExact) {
  // f == c makes every tour's ratio exactly c regardless of trajectory.
  Rng rng(4);
  const Graph g = complete(20);
  const auto est =
      estimate_mean(g, 0, [](NodeId) { return 3.5; }, 50, rng);
  EXPECT_NEAR(est.value, 3.5, 1e-12);
  EXPECT_NEAR(est.standard_error, 0.0, 1e-12);
}

TEST(EstimateMean, TighterThanSumOverSizeForFlatF) {
  // The whole point of the shared-tour ratio estimator: for f with small
  // dispersion, the ratio's variance is far below the variance of the
  // sum estimate divided by N.
  Rng rng(5);
  const Graph g = largest_component(balanced_random_graph(200, rng));
  auto f = [](NodeId v) { return 10.0 + (v % 3); };  // nearly flat
  RunningStats ratio_runs;
  RunningStats sum_runs;
  const double n = static_cast<double>(g.num_nodes());
  for (int rep = 0; rep < 40; ++rep) {
    ratio_runs.add(estimate_mean(g, 0, f, 20, rng).value);
    sum_runs.add(estimate_sum(g, 0, f, 20, rng).value / n);
  }
  EXPECT_LT(ratio_runs.variance(), 0.2 * sum_runs.variance());
}

TEST(Aggregate, PreconditionsEnforced) {
  Rng rng(6);
  const Graph g = ring(8);
  EXPECT_THROW(estimate_sum(g, 0, [](NodeId) { return 1.0; }, 0, rng),
               precondition_error);
}

}  // namespace
}  // namespace overcount

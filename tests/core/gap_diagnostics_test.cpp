#include "core/gap_diagnostics.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "spectral/laplacian.hpp"

namespace overcount {
namespace {

TEST(GapFromTourVariance, IsAnUpperBoundOnExpanders) {
  Rng rng(1);
  const Graph g = largest_component(balanced_random_graph(400, rng));
  const double truth = spectral_gap_exact(largest_component(g));
  const auto est = gap_upper_bound_from_tour_variance(g, 0, 3000, rng);
  // Prop 2 is an upper bound; sampling noise gets ~sqrt(2/3000) slack.
  EXPECT_GT(est.lambda2, 0.8 * truth);
  EXPECT_GT(est.messages, 0u);
}

TEST(GapFromTourVariance, CertifiesPoorExpansion) {
  // On a ring the tour variance blows up, so the upper bound collapses —
  // a peer can conclude "this overlay mixes slowly" from walks alone.
  Rng rng(2);
  const Graph expander = largest_component(k_out_graph(300, 3, rng));
  const Graph cycle = ring(300);
  const auto good = gap_upper_bound_from_tour_variance(expander, 0, 800, rng);
  const auto bad = gap_upper_bound_from_tour_variance(cycle, 0, 800, rng);
  EXPECT_LT(bad.lambda2, 0.2 * good.lambda2);
}

TEST(GapFromTourVariance, PreconditionsEnforced) {
  Rng rng(3);
  const Graph g = ring(16);
  EXPECT_THROW(gap_upper_bound_from_tour_variance(g, 0, 5, rng),
               precondition_error);
}

TEST(GapFromAutocorrelation, RecoversOrderOfMagnitude) {
  Rng rng(4);
  const Graph g = largest_component(balanced_random_graph(300, rng));
  const double truth = spectral_gap_exact(g);
  const auto est = gap_from_autocorrelation(g, 0, 1.0, 20000, rng);
  EXPECT_GT(est.lambda2, truth / 4.0);
  EXPECT_LT(est.lambda2, truth * 6.0);
}

TEST(GapFromAutocorrelation, RanksFamiliesCorrectly) {
  Rng rng(5);
  const Graph expander = largest_component(k_out_graph(400, 3, rng));
  const Graph cycle = ring(400);
  const auto fast =
      gap_from_autocorrelation(expander, 0, 1.0, 20000, rng);
  const auto slow = gap_from_autocorrelation(cycle, 0, 20.0, 20000, rng);
  EXPECT_GT(fast.lambda2, 5.0 * slow.lambda2);
}

TEST(GapFromAutocorrelation, PreconditionsEnforced) {
  Rng rng(6);
  const Graph g = ring(16);
  EXPECT_THROW(gap_from_autocorrelation(g, 0, 0.0, 1000, rng),
               precondition_error);
  EXPECT_THROW(gap_from_autocorrelation(g, 0, 1.0, 10, rng),
               precondition_error);
}

TEST(DegreePreservingRewire, DegreesInvariant) {
  Rng rng(7);
  const Graph g = barabasi_albert(300, 3, rng);
  const Graph r = degree_preserving_rewire(g, 5000, rng);
  ASSERT_EQ(r.num_nodes(), g.num_nodes());
  ASSERT_EQ(r.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(r.degree(v), g.degree(v)) << "node " << v;
}

TEST(DegreePreservingRewire, DestroysClustering) {
  // Watts-Strogatz at beta = 0 has clustering 1/2; rewiring should crush
  // it toward the configuration-model level while keeping degrees 4.
  Rng rng(8);
  const Graph lattice = watts_strogatz(500, 4, 0.0, rng);
  const double before = average_clustering(lattice);
  const Graph rewired = degree_preserving_rewire(lattice, 20000, rng);
  const double after = average_clustering(rewired);
  EXPECT_LT(after, 0.15 * before);
}

TEST(DegreePreservingRewire, ActuallyChangesEdges) {
  Rng rng(9);
  const Graph g = erdos_renyi_gnm(100, 300, rng);
  const Graph r = degree_preserving_rewire(g, 3000, rng);
  std::size_t shared = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (NodeId u : g.neighbors(v))
      if (v < u && r.has_edge(v, u)) ++shared;
  EXPECT_LT(shared, g.num_edges() / 2);
}

TEST(DegreePreservingRewire, PreconditionsEnforced) {
  Rng rng(10);
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_THROW(degree_preserving_rewire(b.build(), 10, rng),
               precondition_error);
}

}  // namespace
}  // namespace overcount

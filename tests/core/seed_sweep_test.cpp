// End-to-end robustness sweeps: the complete pipelines (generate overlay ->
// measure gap -> budget timer -> estimate) across independent seeds, plus
// coverage of the Sample & Collide confidence intervals.
#include <gtest/gtest.h>

#include <cmath>

#include "core/overcount.hpp"

namespace overcount {
namespace {

class EndToEndSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndSeedSweep, SampleCollidePipelineLandsNearTruth) {
  Rng rng(GetParam());
  const Graph g = largest_component(balanced_random_graph(4000, rng));
  const double n = static_cast<double>(g.num_nodes());
  const double gap = spectral_gap_lanczos(g, 100, GetParam());
  ASSERT_GT(gap, 0.05);
  const double timer = recommended_ctrw_timer(n, gap);
  SampleCollideEstimator estimator(g, 0, timer, 25, rng.split());
  RunningStats values;
  for (int trial = 0; trial < 12; ++trial)
    values.add(estimator.estimate().simple);
  // Relative std 1/sqrt(25) = 20%; the mean of 12 is within ~6% (1 se).
  EXPECT_NEAR(values.mean(), n, 4.0 * values.stddev() / std::sqrt(12.0))
      << "seed " << GetParam();
}

TEST_P(EndToEndSeedSweep, RandomTourPipelineLandsNearTruth) {
  Rng rng(GetParam() + 1000);
  const Graph g = largest_component(barabasi_albert(3000, 3, rng));
  const double n = static_cast<double>(g.num_nodes());
  RandomTourEstimator estimator(g, 0, rng.split());
  const double avg = estimator.averaged_size_estimate(800);
  EXPECT_NEAR(avg, n, 0.25 * n) << "seed " << GetParam();
}

TEST_P(EndToEndSeedSweep, AdaptiveBootstrapNeedsNoPriors) {
  Rng rng(GetParam() + 2000);
  const Graph g = largest_component(k_out_graph(3000, 3, rng));
  const auto r = adaptive_sample_collide(g, 0, 25, rng, 0.25, 0.25);
  EXPECT_TRUE(r.converged) << "seed " << GetParam();
  EXPECT_NEAR(r.estimate, static_cast<double>(g.num_nodes()),
              0.5 * static_cast<double>(g.num_nodes()))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndSeedSweep,
                         ::testing::Values(11, 222, 3333, 44444));

TEST(ScConfidenceInterval, ContainsMlAndScalesWithEll) {
  const auto narrow = sc_confidence_interval(4000, 100);
  const auto wide = sc_confidence_interval(400, 4);
  EXPECT_LT(narrow.lower, narrow.estimate);
  EXPECT_GT(narrow.upper, narrow.estimate);
  const double narrow_rel =
      (narrow.upper - narrow.lower) / narrow.estimate;
  const double wide_rel = (wide.upper - wide.lower) / wide.estimate;
  EXPECT_LT(narrow_rel, 0.5 * wide_rel);
  // Half width = z/sqrt(ell) on each side.
  EXPECT_NEAR(narrow_rel, 2.0 * 1.96 / std::sqrt(100.0), 1e-9);
}

TEST(ScConfidenceInterval, EmpiricalCoverageNearNominal) {
  // With ideal uniform samples the 95% interval should cover the truth in
  // the vast majority of repetitions (asymptotics + small-ell skew cost a
  // few points of coverage).
  Rng rng(9);
  const std::size_t n = 10000;
  const std::size_t ell = 30;
  int covered = 0;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    CollisionTracker tracker;
    while (tracker.collisions() < ell)
      tracker.feed(static_cast<NodeId>(rng.uniform_below(n)));
    const auto ci = sc_confidence_interval(tracker.samples(), ell);
    if (ci.lower <= static_cast<double>(n) &&
        static_cast<double>(n) <= ci.upper)
      ++covered;
  }
  EXPECT_GT(covered, trials * 85 / 100);
  EXPECT_LE(covered, trials);
}

TEST(ScConfidenceInterval, LowerBoundClampedAtDistinct) {
  // Tiny ell: the z/sqrt(ell) band would go below the number of distinct
  // peers actually observed, which is a hard lower bound on N.
  const auto ci = sc_confidence_interval(12, 1, 10.0);
  EXPECT_GE(ci.lower, 11.0);
}

}  // namespace
}  // namespace overcount

// Random Tour unbiasedness as a PRODUCT property sweep: graph families x
// statistic kinds, each combination a distinct invariant (Proposition 1
// holds for every f simultaneously, so failures localise the broken f).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/random_tour.hpp"
#include "graph/connectivity.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace overcount {
namespace {

struct FKind {
  std::string name;
  // Builds the statistic for a given graph (so it can reference degrees).
  std::function<std::function<double(NodeId)>(const Graph&)> make;
};

std::vector<FKind> f_kinds() {
  return {
      {"unit", [](const Graph&) {
         return [](NodeId) { return 1.0; };
       }},
      {"degree", [](const Graph& g) {
         return [&g](NodeId v) { return static_cast<double>(g.degree(v)); };
       }},
      {"inverse_degree", [](const Graph& g) {
         return [&g](NodeId v) {
           return 1.0 / static_cast<double>(g.degree(v));
         };
       }},
      {"parity_indicator", [](const Graph&) {
         return [](NodeId v) { return v % 2 == 0 ? 1.0 : 0.0; };
       }},
      {"id_hash_signed", [](const Graph&) {
         // A signed statistic: unbiasedness must hold for negative f too.
         return [](NodeId v) { return v % 3 == 0 ? -2.0 : 1.0; };
       }},
      {"degree_threshold", [](const Graph& g) {
         return [&g](NodeId v) { return g.degree(v) >= 4 ? 1.0 : 0.0; };
       }},
  };
}

using SweepParam = std::tuple<testing::GraphCase, int>;

class RandomTourFSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RandomTourFSweep, UnbiasedForEveryStatistic) {
  const auto& [graph_case, f_index] = GetParam();
  const FKind kind = f_kinds()[static_cast<std::size_t>(f_index)];
  Rng rng(701 + static_cast<std::uint64_t>(f_index));
  const Graph g = largest_component(graph_case.make(rng));
  const auto f = kind.make(g);
  double truth = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) truth += f(v);

  RunningStats stats;
  const int tours = 4000;
  for (int t = 0; t < tours; ++t) stats.add(random_tour(g, 0, f, rng).value);
  const double se = stats.stddev() / std::sqrt(double(tours));
  EXPECT_NEAR(stats.mean(), truth, 5.0 * se + 1e-9)
      << graph_case.name << " / " << kind.name;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesStatistics, RandomTourFSweep,
    ::testing::Combine(
        ::testing::ValuesIn(testing::estimator_graph_cases()),
        ::testing::Range(0, 6)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::get<0>(info.param).name + "_" +
             f_kinds()[static_cast<std::size_t>(std::get<1>(info.param))]
                 .name;
    });

}  // namespace
}  // namespace overcount

#include "core/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"
#include "test_helpers.hpp"
#include "util/tests.hpp"

namespace overcount {
namespace {

TEST(RecommendedTimer, Formula) {
  EXPECT_NEAR(recommended_ctrw_timer(100000.0, 2.3),
              1.5 * std::log(100000.0) / 2.3, 1e-12);
  EXPECT_THROW(recommended_ctrw_timer(1.0, 2.3), precondition_error);
  EXPECT_THROW(recommended_ctrw_timer(100.0, 0.0), precondition_error);
}

class CtrwUniformity : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(CtrwUniformity, SamplesPassChiSquare) {
  // The headline property of Section 4.1: CTRW samples are uniform over the
  // peers, regardless of degree heterogeneity. The timer is budgeted from
  // the graph's actual spectral gap (Lemma 1), which is what makes the same
  // test pass on fast-mixing expanders and slow-mixing rings alike.
  Rng rng(201);
  const Graph g = largest_component(GetParam().make(rng));
  const std::size_t n = g.num_nodes();
  const double gap = spectral_gap_lanczos(g, n - 1);
  const double timer =
      recommended_ctrw_timer(static_cast<double>(n), gap, 2.0);
  CtrwSampler sampler(g, timer, rng.split());
  std::vector<std::size_t> counts(n, 0);
  const std::size_t draws = 40 * n;
  for (std::size_t i = 0; i < draws; ++i) ++counts[sampler.sample(0).node];
  const auto result = chi_square_uniform(counts);
  EXPECT_GT(result.p_value, 1e-4)
      << GetParam().name << " stat=" << result.statistic
      << " dof=" << result.dof;
}

INSTANTIATE_TEST_SUITE_P(
    Families, CtrwUniformity,
    ::testing::ValuesIn(testing::estimator_graph_cases()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(CtrwSampler, ShortTimerIsBiasedTowardOrigin) {
  // Sanity check of the quality/complexity trade-off: an under-budgeted
  // timer yields samples visibly biased toward the origin.
  Rng rng(202);
  const Graph g = ring(64);
  CtrwSampler sampler(g, 0.5, rng.split());
  std::size_t near_origin = 0;
  const int draws = 2000;
  for (int i = 0; i < draws; ++i) {
    const NodeId s = sampler.sample(0).node;
    const std::size_t dist = std::min<std::size_t>(s, 64 - s);
    if (dist <= 4) ++near_origin;
  }
  // Uniform would put ~9/64 ~ 14% within distance 4; the biased walk puts
  // the vast majority there.
  EXPECT_GT(near_origin, draws / 2);
}

TEST(CtrwSampler, TracksCost) {
  Rng rng(203);
  const Graph g = complete(16);
  CtrwSampler sampler(g, 2.0, rng.split());
  EXPECT_EQ(sampler.total_hops(), 0u);
  sampler.sample(0);
  sampler.sample(0);
  EXPECT_EQ(sampler.samples_drawn(), 2u);
  EXPECT_GT(sampler.total_hops(), 0u);
}

TEST(DtrwSampler, BiasedTowardHighDegreeNodes) {
  // The prior-art baseline (fixed-step DTRW) lands on the star hub about
  // half the time instead of 1/n — the bias the paper's sampler removes.
  Rng rng(204);
  const Graph g = star(21);
  DtrwSampler sampler(g, 101, rng.split());  // odd -> can end on hub or leaf
  std::size_t hub = 0;
  const int draws = 4000;
  for (int i = 0; i < draws; ++i)
    if (sampler.sample(1).node == 0) ++hub;
  const double hub_rate = static_cast<double>(hub) / draws;
  EXPECT_GT(hub_rate, 0.4);  // stationary puts 1/2 on the hub
}

TEST(CtrwVsDtrw, CtrwFixesTheStarBias) {
  Rng rng(205);
  const Graph g = star(21);
  CtrwSampler sampler(g, 25.0, rng.split());
  std::size_t hub = 0;
  const int draws = 4000;
  for (int i = 0; i < draws; ++i)
    if (sampler.sample(1).node == 0) ++hub;
  const double hub_rate = static_cast<double>(hub) / draws;
  EXPECT_LT(hub_rate, 0.10);  // uniform would be 1/21 ~ 4.8%
}

TEST(Samplers, PreconditionsEnforced) {
  Rng rng(206);
  const Graph g = ring(8);
  EXPECT_THROW(CtrwSampler(g, 0.0, rng.split()), precondition_error);
  EXPECT_THROW(DtrwSampler(g, 0, rng.split()), precondition_error);
  CtrwSampler s(g, 1.0, rng.split());
  EXPECT_THROW(s.set_timer(-1.0), precondition_error);
}

}  // namespace
}  // namespace overcount

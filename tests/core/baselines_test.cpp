#include <gtest/gtest.h>

#include <cmath>

#include "core/birthday.hpp"
#include "core/gossip.hpp"
#include "core/polling.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace overcount {
namespace {

TEST(Gossip, ConvergesToReciprocalSize) {
  Rng rng(301);
  const Graph g = largest_component(balanced_random_graph(300, rng));
  const std::size_t n = g.num_nodes();
  // ~n log n exchanges per "epoch"; run a few epochs.
  const auto result =
      gossip_average(g, 0, n, 30ull * n, rng);
  for (double est : result.estimates)
    EXPECT_NEAR(est, static_cast<double>(n), 0.05 * static_cast<double>(n));
}

TEST(Gossip, MassIsConserved) {
  Rng rng(302);
  const Graph g = complete(50);
  const auto result = gossip_average(g, 3, 50, 500, rng);
  double mass = 0.0;
  for (double est : result.estimates) mass += 1.0 / est;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(Gossip, CostIsTwoPerExchange) {
  Rng rng(303);
  const Graph g = ring(10);
  const auto result = gossip_average(g, 0, 10, 123, rng);
  EXPECT_EQ(result.messages, 246u);
}

TEST(Gossip, ValueSpreadShrinksWithMoreExchanges) {
  Rng rng(304);
  const Graph g = largest_component(balanced_random_graph(200, rng));
  const std::size_t n = g.num_nodes();
  const auto early = gossip_average(g, 0, n, 2 * n, rng);
  const auto late = gossip_average(g, 0, n, 40 * n, rng);
  EXPECT_LT(late.max_value - late.min_value,
            early.max_value - early.min_value);
}

TEST(Polling, UnbiasedOverRepeats) {
  Rng rng(305);
  const Graph g = largest_component(balanced_random_graph(500, rng));
  const double n = static_cast<double>(g.num_nodes());
  RunningStats stats;
  for (int trial = 0; trial < 300; ++trial)
    stats.add(probabilistic_polling(g, 0, 0.2, rng).value);
  const double se = stats.stddev() / std::sqrt(300.0);
  EXPECT_NEAR(stats.mean(), n, 5.0 * se + 1e-9);
}

TEST(Polling, FullProbabilityIsExact) {
  Rng rng(306);
  const Graph g = complete(40);
  const auto e = probabilistic_polling(g, 0, 1.0, rng);
  EXPECT_DOUBLE_EQ(e.value, 40.0);
  EXPECT_EQ(e.replies, 39u);
}

TEST(Polling, FloodCostIsLinearInEdges) {
  Rng rng(307);
  const Graph g = complete(40);
  const auto e = probabilistic_polling(g, 0, 0.5, rng);
  // Every node forwards over each incident edge: 2|E| flood messages.
  EXPECT_EQ(e.flood_messages, 2u * g.num_edges());
}

TEST(Polling, HopLimitRestrictsScope) {
  Rng rng(308);
  const Graph g = path_graph(10);
  const auto e = probabilistic_polling(g, 0, 1.0, rng, 3);
  EXPECT_DOUBLE_EQ(e.value, 4.0);  // nodes 0..3 reachable in <= 3 hops
}

TEST(Polling, AckImplosionVisibleAtScale) {
  // The drawback the paper highlights: replies concentrate on the
  // initiator. With p = 0.5 and n = 500, ~250 simultaneous replies.
  Rng rng(309);
  const Graph g = largest_component(balanced_random_graph(500, rng));
  const auto e = probabilistic_polling(g, 0, 0.5, rng);
  EXPECT_GT(e.replies, g.num_nodes() / 3);
}

TEST(Birthday, MeanNearTruth) {
  Rng rng(310);
  const Graph g = largest_component(balanced_random_graph(2000, rng));
  const double n = static_cast<double>(g.num_nodes());
  BirthdayParadoxEstimator estimator(g, 0, 9.0, 20, rng.split());
  RunningStats stats;
  for (int trial = 0; trial < 20; ++trial)
    stats.add(estimator.estimate().value);
  const double se = stats.stddev() / std::sqrt(20.0);
  // C_1^2/2 is only asymptotically unbiased; tolerate a slow drift.
  EXPECT_NEAR(stats.mean(), n, 5.0 * se + 0.1 * n);
}

TEST(Birthday, NeedsMoreSamplesThanSampleCollideForSameVariance) {
  // The paper's headline comparison (Section 4.3): to match S&C at ell,
  // birthday-paradox averaging needs ell repetitions, i.e. ell*sqrt(N)
  // samples against S&C's sqrt(2 ell N) — a factor sqrt(ell/2) more.
  Rng rng(311);
  const Graph g = largest_component(balanced_random_graph(3000, rng));
  const std::size_t ell = 8;

  BirthdayParadoxEstimator birthday(g, 0, 9.0, ell, rng.split());
  SampleCollideEstimator sc(g, 0, 9.0, ell, rng.split());

  RunningStats bd_samples;
  RunningStats sc_samples;
  for (int trial = 0; trial < 10; ++trial) {
    bd_samples.add(static_cast<double>(birthday.estimate().samples));
    sc_samples.add(static_cast<double>(sc.estimate().samples));
  }
  const double ratio = bd_samples.mean() / sc_samples.mean();
  const double predicted = std::sqrt(static_cast<double>(ell) / 2.0) *
                           std::sqrt(3.14159 / 2.0);  // E[C1]=sqrt(pi N/2)
  EXPECT_GT(ratio, 0.5 * predicted);
  EXPECT_LT(ratio, 2.0 * predicted);
}

TEST(Birthday, RequiresAtLeastOneRepetition) {
  Rng rng(312);
  const Graph g = ring(8);
  EXPECT_THROW(BirthdayParadoxEstimator(g, 0, 1.0, 0, rng.split()),
               precondition_error);
}

}  // namespace
}  // namespace overcount

#include "core/random_tour.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace overcount {
namespace {

class RandomTourUnbiased
    : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(RandomTourUnbiased, SizeEstimateMeanIsN) {
  Rng rng(101);
  const Graph g = GetParam().make(rng);
  const auto n = static_cast<double>(g.num_nodes());
  RunningStats stats;
  const int tours = 4000;
  for (int t = 0; t < tours; ++t)
    stats.add(random_tour_size(g, 0, rng).value);
  const double se = stats.stddev() / std::sqrt(double(tours));
  EXPECT_NEAR(stats.mean(), n, 5.0 * se + 1e-9) << GetParam().name;
}

TEST_P(RandomTourUnbiased, GeneralFunctionMeanIsSum) {
  // Estimate the number of nodes with degree >= 3 (Section 3's "counting
  // peers with given characteristics").
  Rng rng(102);
  const Graph g = GetParam().make(rng);
  double truth = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (g.degree(v) >= 3) truth += 1.0;
  const auto f = [&g](NodeId v) { return g.degree(v) >= 3 ? 1.0 : 0.0; };
  RunningStats stats;
  const int tours = 4000;
  for (int t = 0; t < tours; ++t) stats.add(random_tour(g, 0, f, rng).value);
  const double se = stats.stddev() / std::sqrt(double(tours));
  EXPECT_NEAR(stats.mean(), truth, 5.0 * se + 1e-9) << GetParam().name;
}

TEST_P(RandomTourUnbiased, TourCostMeanIsKacFormula) {
  Rng rng(103);
  const Graph g = GetParam().make(rng);
  const double expected = static_cast<double>(g.total_degree()) /
                          static_cast<double>(g.degree(0));
  RunningStats steps;
  const int tours = 3000;
  for (int t = 0; t < tours; ++t)
    steps.add(static_cast<double>(random_tour_size(g, 0, rng).steps));
  const double se = steps.stddev() / std::sqrt(double(tours));
  EXPECT_NEAR(steps.mean(), expected, 5.0 * se + 1e-9) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, RandomTourUnbiased,
    ::testing::ValuesIn(testing::estimator_graph_cases()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(RandomTour, SumOfDegreesIsExactEveryTour) {
  // With f(v) = d_v the counter adds exactly 1 per visited node and the
  // estimate telescopes; its mean is 2|E| and per-tour dispersion is that of
  // the tour length rescaled — a good smoke test of the arithmetic.
  Rng rng(7);
  const Graph g = largest_component(balanced_random_graph(100, rng));
  const auto f = [&g](NodeId v) { return static_cast<double>(g.degree(v)); };
  RunningStats stats;
  for (int t = 0; t < 4000; ++t) stats.add(random_tour(g, 0, f, rng).value);
  const double truth = static_cast<double>(g.total_degree());
  const double se = stats.stddev() / std::sqrt(4000.0);
  EXPECT_NEAR(stats.mean(), truth, 5.0 * se + 1e-9);
}

TEST(RandomTour, DifferentOriginsSameExpectation) {
  Rng rng(8);
  const Graph g = largest_component(barabasi_albert(150, 3, rng));
  const auto n = static_cast<double>(g.num_nodes());
  // A hub and a leaf-ish node must both see E[estimate] = n.
  NodeId hub = 0;
  NodeId small = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
    if (g.degree(v) < g.degree(small)) small = v;
  }
  for (NodeId origin : {hub, small}) {
    RunningStats stats;
    for (int t = 0; t < 5000; ++t)
      stats.add(random_tour_size(g, origin, rng).value);
    const double se = stats.stddev() / std::sqrt(5000.0);
    EXPECT_NEAR(stats.mean(), n, 5.0 * se + 1e-9) << "origin=" << origin;
  }
}

TEST(RandomTour, TwoNodeGraphIsExact) {
  // On K_2 every tour returns in exactly 2 steps and the estimate is
  // deterministic: d_0 * (f(0)/d_0 + f(1)/d_1) = 2.
  Rng rng(9);
  const Graph g = complete(2);
  for (int t = 0; t < 10; ++t) {
    const auto e = random_tour_size(g, 0, rng);
    EXPECT_DOUBLE_EQ(e.value, 2.0);
    EXPECT_EQ(e.steps, 2u);
  }
}

TEST(RandomTour, MaxStepsAborts) {
  Rng rng(10);
  const Graph g = ring(1000);
  // A single step can never return to the origin (no self-loops), so the
  // cap is hit deterministically and the tour is flagged as truncated.
  const auto capped = random_tour_size(g, 0, rng, 1);
  EXPECT_EQ(capped.steps, 1u);
  EXPECT_FALSE(capped.completed);
  // With a generous cap, tours end strictly before it or exactly at it.
  const auto loose = random_tour_size(g, 0, rng, 50);
  EXPECT_LE(loose.steps, 50u);
}

TEST(RandomTour, CompletedFlagDistinguishesTruncation) {
  Rng rng(12);
  const Graph g = complete(2);
  // On K_2 every tour returns in exactly 2 steps: a cap of 2 still
  // completes (the probe is home exactly at the cap), a cap of 1 truncates.
  const auto exact = random_tour_size(g, 0, rng, 2);
  EXPECT_TRUE(exact.completed);
  EXPECT_EQ(exact.steps, 2u);
  const auto cut = random_tour_size(g, 0, rng, 1);
  EXPECT_FALSE(cut.completed);
  EXPECT_EQ(cut.steps, 1u);
  // The truncated partial value is biased low — exactly why it carries an
  // explicit flag instead of poisoning averages silently.
  EXPECT_LT(cut.value, exact.value);
  // Uncapped tours always complete, as does the CTRW return-time variant.
  EXPECT_TRUE(random_tour_size(g, 0, rng).completed);
  EXPECT_TRUE(ctrw_return_time_tour(g, 0, rng).completed);
}

TEST(RandomTour, RequiresConnectedOrigin) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  Rng rng(11);
  EXPECT_THROW(random_tour_size(g, 2, rng), precondition_error);
}

TEST(RandomTour, WorksOnDynamicGraph) {
  Rng rng(12);
  DynamicGraph d(complete(20));
  d.remove_node(5);
  RunningStats stats;
  for (int t = 0; t < 3000; ++t) stats.add(random_tour_size(d, 0, rng).value);
  const double se = stats.stddev() / std::sqrt(3000.0);
  EXPECT_NEAR(stats.mean(), 19.0, 5.0 * se + 1e-9);
}

TEST(RandomTourEstimator, AccumulatesCost) {
  Rng rng(13);
  const Graph g = complete(10);
  RandomTourEstimator estimator(g, 0, rng.split());
  const auto first = estimator.estimate_size();
  EXPECT_EQ(estimator.tours_run(), 1u);
  EXPECT_EQ(estimator.total_steps(), first.steps);
  estimator.estimate_size();
  EXPECT_EQ(estimator.tours_run(), 2u);
  EXPECT_GE(estimator.total_steps(), first.steps + 2);
}

TEST(RandomTourEstimator, AveragedEstimateTightens) {
  Rng rng(14);
  const Graph g = largest_component(balanced_random_graph(200, rng));
  RandomTourEstimator estimator(g, 0, rng.split());
  // Chebyshev-style check: the mean of many tours lands within 20%.
  const double avg = estimator.averaged_size_estimate(3000);
  EXPECT_NEAR(avg, static_cast<double>(g.num_nodes()),
              0.2 * static_cast<double>(g.num_nodes()));
}

TEST(RandomTour, VarianceWithinProposition2Bound) {
  // Proposition 2 upper bound, loosened via Var(N_hat) <= N^2 * 2 dbar /
  // lambda_2 + 2N (we test the empirical variance against it with margin).
  Rng rng(15);
  const Graph g = largest_component(balanced_random_graph(150, rng));
  const double n = static_cast<double>(g.num_nodes());
  const double gap = spectral_gap_exact(g);
  const double dbar = g.average_degree();
  RunningStats stats;
  for (int t = 0; t < 8000; ++t) stats.add(random_tour_size(g, 0, rng).value);
  const double bound = n * n * 2.0 * dbar / gap + 2.0 * n;
  // Empirical variance of ~8000 samples concentrates within ~10% for these
  // tails; 1.5x margin is generous.
  EXPECT_LT(stats.variance(), 1.5 * bound);
  // And the lower-bound side of Prop. 2: Var >= (N-1)^2-ish order N^2 is
  // about the ratio; check std-dev is at least a third of the mean.
  EXPECT_GT(stats.stddev(), n / 3.0);
}

TEST(RunsNeeded, ScalesAsExpected) {
  const auto base = random_tour_runs_needed(8.0, 1.0, 0.1, 0.1);
  // eps -> eps/2 quadruples the runs.
  EXPECT_EQ(random_tour_runs_needed(8.0, 1.0, 0.05, 0.1), 4 * base);
  // halving the gap doubles the runs.
  EXPECT_EQ(random_tour_runs_needed(8.0, 0.5, 0.1, 0.1), 2 * base);
  EXPECT_THROW(random_tour_runs_needed(0.0, 1.0, 0.1, 0.1),
               precondition_error);
}

}  // namespace
}  // namespace overcount

// Repeatability of the full protocol stack: identical seeds must produce
// identical message traces, estimates, and costs — the property every
// debugging session and every recorded experiment depends on.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "protocols/gossip_protocol.hpp"
#include "protocols/random_tour_protocol.hpp"
#include "protocols/sampling_protocol.hpp"
#include "sim/scenario.hpp"

namespace overcount {
namespace {

struct RtTrace {
  std::vector<double> estimates;
  std::uint64_t messages = 0;
  double final_time = 0.0;
  bool operator==(const RtTrace&) const = default;
};

RtTrace run_rt(std::uint64_t seed, int tours) {
  Rng rng(seed);
  DynamicGraph graph(largest_component(balanced_random_graph(200, rng)));
  Simulator sim;
  Network net(sim, graph, {1.0, 0.7}, 0.01, rng.split());
  RandomTourProtocol proto(net, rng.split());
  proto.set_timeout_policy(6.0, 1e4);
  RtTrace trace;
  int remaining = tours;
  std::function<void(const RandomTourProtocol::Result&)> on_done =
      [&](const RandomTourProtocol::Result& r) {
        trace.estimates.push_back(r.estimate);
        if (--remaining > 0) proto.start(0, on_done);
      };
  proto.start(0, on_done);
  sim.run();
  trace.messages = net.messages_sent();
  trace.final_time = sim.now();
  return trace;
}

TEST(ProtocolDeterminism, RandomTourTraceRepeats) {
  const auto a = run_rt(11, 60);
  const auto b = run_rt(11, 60);
  EXPECT_EQ(a, b);
  const auto c = run_rt(12, 60);
  EXPECT_NE(a.estimates, c.estimates);
}

TEST(ProtocolDeterminism, SampleCollideTraceRepeats) {
  auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    DynamicGraph graph(largest_component(balanced_random_graph(300, rng)));
    Simulator sim;
    Network net(sim, graph, {1.0, 0.3}, 0.0, rng.split());
    SampleCollideProtocol proto(net, 6.0, 6, rng.split());
    std::vector<std::uint64_t> samples;
    int remaining = 10;
    std::function<void(const SampleCollideProtocol::Result&)> on_done =
        [&](const SampleCollideProtocol::Result& r) {
          samples.push_back(r.estimate.samples);
          if (--remaining > 0) proto.start(0, on_done);
        };
    proto.start(0, on_done);
    sim.run();
    return std::pair{samples, net.messages_sent()};
  };
  EXPECT_EQ(run(21), run(21));
  EXPECT_NE(run(21).first, run(22).first);
}

TEST(ProtocolDeterminism, GossipTraceRepeats) {
  auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    DynamicGraph graph(largest_component(balanced_random_graph(120, rng)));
    Simulator sim;
    Network net(sim, graph, {0.05, 0.02}, 0.0, rng.split());
    GossipAveragingProtocol gossip(net, 0, rng.split());
    gossip.run_until(30.0);
    std::vector<double> values;
    for (NodeId v : graph.alive_nodes()) values.push_back(gossip.estimate_at(v));
    return std::pair{values, net.messages_sent()};
  };
  EXPECT_EQ(run(31), run(31));
}

TEST(ProtocolDeterminism, ScenarioEngineRepeats) {
  // Already covered at the scenario level; here the assertion is that the
  // full per-point message accounting repeats too.
  auto run = [] {
    ScenarioSpec spec;
    spec.initial_nodes = 250;
    spec.runs = 25;
    spec.topology = TopologyKind::kBalanced;
    return run_scenario(spec, random_tour_estimate_fn(), 5, 99);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i)
    EXPECT_EQ(a.points[i].messages, b.points[i].messages);
}

}  // namespace
}  // namespace overcount

#include "protocols/gossip_protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace overcount {
namespace {

TEST(GossipProtocol, ConvergesToReciprocalSizeWithoutLoss) {
  Rng rng(1);
  DynamicGraph graph(largest_component(balanced_random_graph(200, rng)));
  Simulator sim;
  Network net(sim, graph, {0.05, 0.02}, 0.0, rng.split());
  GossipAveragingProtocol gossip(net, 0, rng.split());
  gossip.run_until(120.0);  // ~120 exchange rounds per node
  const double n = static_cast<double>(graph.num_alive());
  for (NodeId v : graph.alive_nodes())
    EXPECT_NEAR(gossip.estimate_at(v), n, 0.05 * n) << "node " << v;
}

TEST(GossipProtocol, MassConservedWithoutLoss) {
  Rng rng(2);
  DynamicGraph graph(largest_component(balanced_random_graph(150, rng)));
  Simulator sim;
  Network net(sim, graph, {0.05, 0.0}, 0.0, rng.split());
  GossipAveragingProtocol gossip(net, 0, rng.split());
  gossip.run_until(40.0);
  // Exchanges in flight can hold up to spread/2 of transient imbalance.
  EXPECT_NEAR(gossip.total_mass(), 1.0, gossip.value_spread() + 1e-9);
}

TEST(GossipProtocol, SpreadShrinksOverTime) {
  Rng rng(3);
  DynamicGraph graph(largest_component(balanced_random_graph(150, rng)));
  Simulator sim;
  Network net(sim, graph, {0.05, 0.0}, 0.0, rng.split());
  GossipAveragingProtocol gossip(net, 0, rng.split());
  gossip.run_until(5.0);
  const double early = gossip.value_spread();
  gossip.run_until(60.0);
  const double late = gossip.value_spread();
  EXPECT_LT(late, 0.2 * early);
}

TEST(GossipProtocol, DriftStaysBoundedUnderModestLoss) {
  Rng rng(4);
  DynamicGraph graph(largest_component(balanced_random_graph(150, rng)));
  Simulator sim;
  Network net(sim, graph, {0.05, 0.0}, 0.01, rng.split());
  GossipAveragingProtocol gossip(net, 0, rng.split());
  gossip.run_until(80.0);
  // Lost replies leak mass; 1% loss keeps the leak within a factor ~2 in
  // either direction (the estimate is 1/value, so mass drift maps directly
  // to estimate drift).
  EXPECT_GT(gossip.total_mass(), 0.4);
  EXPECT_LT(gossip.total_mass(), 2.0);
  const double n = static_cast<double>(graph.num_alive());
  EXPECT_NEAR(gossip.estimate_at(0), n, 0.8 * n);
}

TEST(GossipProtocol, SurvivesDepartures) {
  Rng rng(5);
  DynamicGraph graph(largest_component(balanced_random_graph(200, rng)));
  Simulator sim;
  Network net(sim, graph, {0.05, 0.0}, 0.0, rng.split());
  GossipAveragingProtocol gossip(net, 0, rng.split());
  Rng churn_rng = rng.split();
  // Remove 30 peers (never node 0, which holds most early mass) mid-run.
  std::function<void()> churn = [&] {
    if (graph.num_alive() > 170) {
      const NodeId victim = graph.random_alive_node(churn_rng);
      if (victim != 0) graph.remove_node(victim);
      sim.schedule_after(0.5, churn);
    }
  };
  sim.schedule_after(1.0, churn);
  gossip.run_until(100.0);
  // Mass on departed nodes is lost; estimates inflate accordingly but the
  // protocol itself must not wedge or crash, and survivors still agree.
  RunningStats ests;
  for (NodeId v : graph.alive_nodes()) ests.add(gossip.estimate_at(v));
  EXPECT_LT(ests.stddev() / ests.mean(), 0.2);
}

TEST(GossipProtocol, ExchangesAccounted) {
  Rng rng(6);
  DynamicGraph graph(complete(20));
  Simulator sim;
  Network net(sim, graph, {0.05, 0.0}, 0.0, rng.split());
  GossipAveragingProtocol gossip(net, 3, rng.split());
  gossip.run_until(10.0);
  EXPECT_GT(gossip.exchanges_started(), 100u);
  // Each completed exchange = push + reply.
  EXPECT_LE(net.messages_sent(), 2 * gossip.exchanges_started());
}

}  // namespace
}  // namespace overcount

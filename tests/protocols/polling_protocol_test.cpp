#include "protocols/polling_protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace overcount {
namespace {

PollingProtocol::Result run_poll(DynamicGraph& graph, double p,
                                 std::uint64_t seed, double loss = 0.0) {
  Simulator sim;
  Network net(sim, graph, {1.0, 0.5}, loss, Rng(seed));
  PollingProtocol proto(net, p, Rng(seed + 1));
  std::optional<PollingProtocol::Result> result;
  proto.start(0, [&](const auto& r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.has_value());
  return result.value_or(PollingProtocol::Result{});
}

TEST(PollingProtocol, CertainRepliesCountEveryone) {
  DynamicGraph graph(complete(30));
  const auto r = run_poll(graph, 1.0, 1);
  EXPECT_EQ(r.replies, 29u);
  EXPECT_DOUBLE_EQ(r.estimate, 30.0);
  // Flood: every reached node forwards over all incident edges.
  EXPECT_GE(r.flood_messages, 2u * graph.num_edges() - graph.degree(0));
}

TEST(PollingProtocol, UnbiasedOverRepeats) {
  Rng rng(2);
  DynamicGraph graph(largest_component(balanced_random_graph(300, rng)));
  RunningStats stats;
  for (std::uint64_t seed = 0; seed < 40; ++seed)
    stats.add(run_poll(graph, 0.25, seed).estimate);
  const double n = static_cast<double>(graph.num_alive());
  const double se = stats.stddev() / std::sqrt(40.0);
  EXPECT_NEAR(stats.mean(), n, 5.0 * se + 1e-9);
}

TEST(PollingProtocol, AckImplosionVisibleInTimeDomain) {
  // Flood depth is only a few hops, so hundreds of replies land within a
  // couple of latency units of each other — the burst metric captures it.
  Rng rng(3);
  DynamicGraph graph(largest_component(balanced_random_graph(800, rng)));
  const auto r = run_poll(graph, 0.5, 7);
  EXPECT_GT(r.replies, 300u);
  EXPECT_GT(r.peak_reply_burst, r.replies / 10);
}

TEST(PollingProtocol, RestrictedToComponent) {
  GraphBuilder b(10);
  for (NodeId v = 0; v + 1 < 5; ++v) b.add_edge(v, v + 1);
  for (NodeId v = 5; v + 1 < 10; ++v) b.add_edge(v, v + 1);
  DynamicGraph graph(b.build());
  const auto r = run_poll(graph, 1.0, 4);
  EXPECT_DOUBLE_EQ(r.estimate, 5.0);  // only the initiator's path of 5
}

TEST(PollingProtocol, LossDeflatesTheEstimate) {
  // No retransmission in the classic scheme: lost queries prune subtrees
  // and lost replies vanish, so the estimate under loss is biased LOW —
  // one more robustness contrast with the walk methods' timeout recovery.
  Rng rng(5);
  DynamicGraph graph(largest_component(balanced_random_graph(400, rng)));
  RunningStats lossless;
  RunningStats lossy;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    lossless.add(run_poll(graph, 0.5, seed).estimate);
    lossy.add(run_poll(graph, 0.5, seed + 100, 0.05).estimate);
  }
  EXPECT_LT(lossy.mean(), 0.95 * lossless.mean());
}

TEST(PollingProtocol, PreconditionsEnforced) {
  DynamicGraph graph(ring(5));
  Simulator sim;
  Network net(sim, graph, {1.0, 0.0}, 0.0, Rng(1));
  EXPECT_THROW(PollingProtocol(net, 0.0, Rng(2)), precondition_error);
  EXPECT_THROW(PollingProtocol(net, 1.5, Rng(2)), precondition_error);
  PollingProtocol proto(net, 0.5, Rng(2));
  proto.start(0, [](const auto&) {});
  EXPECT_THROW(proto.start(1, [](const auto&) {}), precondition_error);
}

}  // namespace
}  // namespace overcount

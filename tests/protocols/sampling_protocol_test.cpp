#include "protocols/sampling_protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"
#include "util/tests.hpp"

namespace overcount {
namespace {

TEST(CtrwSampleProtocol, SamplesAreUniform) {
  Rng rng(1);
  DynamicGraph graph(largest_component(balanced_random_graph(60, rng)));
  Simulator sim;
  Network net(sim, graph, {1.0, 0.0}, 0.0, rng.split());
  CtrwSampleProtocol proto(net, 14.0, rng.split());

  std::vector<std::size_t> counts(graph.num_slots(), 0);
  std::function<void(const CtrwSampleProtocol::Sample&)> on_sample;
  int remaining = static_cast<int>(40 * graph.num_alive());
  on_sample = [&](const CtrwSampleProtocol::Sample& s) {
    ++counts[s.node];
    if (--remaining > 0) proto.request(0, on_sample);
  };
  proto.request(0, on_sample);
  sim.run();
  const auto result = chi_square_uniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(CtrwSampleProtocol, TimerDyingAtOriginCostsNothing) {
  Rng rng(2);
  DynamicGraph graph(ring(10));
  Simulator sim;
  Network net(sim, graph, {1.0, 0.0}, 0.0, rng.split());
  CtrwSampleProtocol proto(net, 1e-9, rng.split());
  std::optional<CtrwSampleProtocol::Sample> sample;
  proto.request(3, [&](const auto& s) { sample = s; });
  sim.run();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->node, 3u);
  EXPECT_EQ(sample->hops, 0u);
  EXPECT_EQ(net.messages_sent(), 0u);
}

TEST(CtrwSampleProtocol, RecoversFromLoss) {
  Rng rng(3);
  DynamicGraph graph(complete(10));
  Simulator sim;
  Network net(sim, graph, {1.0, 0.0}, 0.05, rng.split());
  CtrwSampleProtocol proto(net, 3.0, rng.split());
  proto.set_timeout_policy(4.0, 200.0);
  int completed = 0;
  std::uint64_t retries = 0;
  std::function<void(const CtrwSampleProtocol::Sample&)> on_sample;
  int remaining = 500;
  on_sample = [&](const CtrwSampleProtocol::Sample& s) {
    ++completed;
    retries += s.retries;
    if (--remaining > 0) proto.request(0, on_sample);
  };
  proto.request(0, on_sample);
  sim.run();
  EXPECT_EQ(completed, 500);
  EXPECT_GT(retries, 0u);
}

TEST(CtrwSampleProtocol, IsolatedHolderReportsItself) {
  // A probe can never leave an isolated origin: the sample is the origin.
  Rng rng(4);
  DynamicGraph graph(ring(5));
  graph.remove_node(1);
  graph.remove_node(4);  // node 0 isolated
  Simulator sim;
  Network net(sim, graph, {1.0, 0.0}, 0.0, rng.split());
  CtrwSampleProtocol proto(net, 5.0, rng.split());
  std::optional<CtrwSampleProtocol::Sample> sample;
  proto.request(0, [&](const auto& s) { sample = s; });
  sim.run();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->node, 0u);
}

TEST(SampleCollideProtocol, EstimateMatchesTruthOnAverage) {
  Rng rng(5);
  DynamicGraph graph(largest_component(balanced_random_graph(800, rng)));
  Simulator sim;
  Network net(sim, graph, {1.0, 0.0}, 0.0, rng.split());
  SampleCollideProtocol proto(net, 8.0, 10, rng.split());

  RunningStats values;
  std::function<void(const SampleCollideProtocol::Result&)> on_done;
  int remaining = 25;
  on_done = [&](const SampleCollideProtocol::Result& r) {
    values.add(r.estimate.simple);
    EXPECT_LE(r.estimate.n_minus, r.estimate.ml + 1e-6);
    EXPECT_GE(r.estimate.n_plus, r.estimate.ml - 1e-6);
    if (--remaining > 0) proto.start(0, on_done);
  };
  proto.start(0, on_done);
  sim.run();
  const double n = static_cast<double>(graph.num_alive());
  EXPECT_NEAR(values.mean(), n, 4.0 * values.stddev() / std::sqrt(25.0));
}

TEST(SampleCollideProtocol, MessageCostDominatedByWalkHops) {
  Rng rng(6);
  DynamicGraph graph(largest_component(balanced_random_graph(400, rng)));
  Simulator sim;
  Network net(sim, graph, {1.0, 0.0}, 0.0, rng.split());
  SampleCollideProtocol proto(net, 6.0, 5, rng.split());
  std::optional<SampleCollideProtocol::Result> result;
  proto.start(0, [&](const auto& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  // network messages = walk hops + one reply per sample (replies that
  // travelled zero hops are delivered locally and unsent).
  EXPECT_GE(net.messages_sent(), result->estimate.hops);
  EXPECT_LE(net.messages_sent(),
            result->estimate.hops + result->estimate.samples);
}

TEST(SampleCollideProtocol, SurvivesChurnDuringMeasurement) {
  Rng rng(7);
  DynamicGraph graph(largest_component(balanced_random_graph(500, rng)));
  Simulator sim;
  Network net(sim, graph, {1.0, 0.0}, 0.0, rng.split());
  SampleCollideProtocol proto(net, 6.0, 8, rng.split());
  // Remove a node every 50 time units while the measurement runs.
  Rng churn_rng = rng.split();
  std::function<void()> churn = [&] {
    if (graph.num_alive() > 400) {
      NodeId victim = graph.random_alive_node(churn_rng);
      if (victim != 0) graph.remove_node(victim);
      sim.schedule_after(50.0, churn);
    }
  };
  sim.schedule_after(50.0, churn);

  std::optional<SampleCollideProtocol::Result> result;
  proto.start(0, [&](const auto& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->estimate.simple, 100.0);
}

}  // namespace
}  // namespace overcount

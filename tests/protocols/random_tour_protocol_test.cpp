#include "protocols/random_tour_protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace overcount {
namespace {

// Runs `tours` protocol-level Random Tours back to back and returns the
// estimate statistics.
RunningStats run_protocol_tours(Network& net, RandomTourProtocol& proto,
                                Simulator& sim, NodeId initiator,
                                int tours) {
  RunningStats stats;
  std::function<void(const RandomTourProtocol::Result&)> on_done;
  int remaining = tours;
  on_done = [&](const RandomTourProtocol::Result& r) {
    stats.add(r.estimate);
    if (--remaining > 0) proto.start(initiator, on_done);
  };
  proto.start(initiator, on_done);
  sim.run();
  (void)net;
  return stats;
}

TEST(RandomTourProtocol, UnbiasedWithoutLoss) {
  Rng rng(1);
  DynamicGraph graph(largest_component(balanced_random_graph(150, rng)));
  Simulator sim;
  Network net(sim, graph, {1.0, 0.2}, 0.0, rng.split());
  RandomTourProtocol proto(net, rng.split());
  // No loss: timeouts must never truncate a tour, or the recorded tours
  // would be conditioned on being short and the estimate biased low.
  proto.set_timeout_policy(1e6, 1e12);
  const auto stats = run_protocol_tours(net, proto, sim, 0, 2500);
  const double n = static_cast<double>(graph.num_alive());
  const double se = stats.stddev() / std::sqrt(2500.0);
  EXPECT_NEAR(stats.mean(), n, 5.0 * se + 1e-9);
}

TEST(RandomTourProtocol, HopsMatchMessageAccounting) {
  Rng rng(2);
  DynamicGraph graph(complete(10));
  Simulator sim;
  Network net(sim, graph, {1.0, 0.0}, 0.0, rng.split());
  RandomTourProtocol proto(net, rng.split());
  std::optional<RandomTourProtocol::Result> result;
  proto.start(0, [&](const auto& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->hops, net.messages_sent());
  EXPECT_EQ(result->retries, 0u);
  // With unit latency, trip time == hops.
  EXPECT_DOUBLE_EQ(result->trip_time, static_cast<double>(result->hops));
}

TEST(RandomTourProtocol, GeneralStatisticAggregation) {
  // Count high-degree peers through the protocol path.
  Rng rng(3);
  DynamicGraph graph(largest_component(barabasi_albert(120, 3, rng)));
  double truth = 0.0;
  for (NodeId v : graph.alive_nodes())
    if (graph.degree(v) >= 6) truth += 1.0;
  Simulator sim;
  Network net(sim, graph, {1.0, 0.0}, 0.0, rng.split());
  RandomTourProtocol proto(net, rng.split(), [&graph](NodeId v) {
    return graph.degree(v) >= 6 ? 1.0 : 0.0;
  });
  proto.set_timeout_policy(1e6, 1e12);
  const auto stats = run_protocol_tours(net, proto, sim, 0, 3000);
  const double se = stats.stddev() / std::sqrt(3000.0);
  EXPECT_NEAR(stats.mean(), truth, 5.0 * se + 1e-9);
}

TEST(RandomTourProtocol, RecoversFromMessageLossViaTimeout) {
  Rng rng(4);
  DynamicGraph graph(complete(12));
  Simulator sim;
  // 2% loss: most tours complete, lost ones must be retried.
  Network net(sim, graph, {1.0, 0.0}, 0.02, rng.split());
  RandomTourProtocol proto(net, rng.split());
  proto.set_timeout_policy(4.0, 500.0);
  int completed = 0;
  std::uint64_t total_retries = 0;
  std::function<void(const RandomTourProtocol::Result&)> on_done;
  int remaining = 300;
  on_done = [&](const RandomTourProtocol::Result& r) {
    ++completed;
    total_retries += r.retries;
    if (--remaining > 0) proto.start(0, on_done);
  };
  proto.start(0, on_done);
  sim.run();
  EXPECT_EQ(completed, 300);
  // Tour length ~ 12 hops at 2% loss => ~20% of tours lose their probe.
  EXPECT_GT(total_retries, 10u);
  EXPECT_GT(proto.tours_completed(), 0u);
}

TEST(RandomTourProtocol, AdaptiveTimeoutTightensAfterHistory) {
  // After enough completed tours the timeout is mean + 4 sd of trip times,
  // which is far smaller than the initial guess; losses then recover fast.
  Rng rng(5);
  DynamicGraph graph(complete(8));
  Simulator sim;
  Network net(sim, graph, {1.0, 0.0}, 0.05, rng.split());
  RandomTourProtocol proto(net, rng.split());
  proto.set_timeout_policy(4.0, 1e5);
  int completed = 0;
  std::function<void(const RandomTourProtocol::Result&)> on_done;
  int remaining = 200;
  on_done = [&](const RandomTourProtocol::Result&) {
    ++completed;
    if (--remaining > 0) proto.start(0, on_done);
  };
  proto.start(0, on_done);
  sim.run();
  EXPECT_EQ(completed, 200);
  // ~1/3 of the 200 tours lose their probe. If the timeout never adapted,
  // each loss would cost >= 1e5 (total >= 6e6); adaptation keeps it around
  // the trip-time scale after the first few completions.
  EXPECT_LT(sim.now(), 2e6);
}

TEST(RandomTourProtocol, RejectsIsolatedInitiator) {
  Rng rng(6);
  DynamicGraph graph(ring(5));
  graph.remove_node(1);
  graph.remove_node(4);  // node 0 now isolated
  Simulator sim;
  Network net(sim, graph, {1.0, 0.0}, 0.0, rng.split());
  RandomTourProtocol proto(net, rng.split());
  EXPECT_THROW(proto.start(0, [](const auto&) {}), precondition_error);
}

TEST(RandomTourProtocol, OnlyOneTourInFlight) {
  Rng rng(7);
  DynamicGraph graph(complete(5));
  Simulator sim;
  Network net(sim, graph, {1.0, 0.0}, 0.0, rng.split());
  RandomTourProtocol proto(net, rng.split());
  proto.start(0, [](const auto&) {});
  EXPECT_THROW(proto.start(0, [](const auto&) {}), precondition_error);
}

}  // namespace
}  // namespace overcount

#include "walk/hitting.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/random_tour.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace overcount {
namespace {

TEST(HittingTimes, TwoNodeGraph) {
  const auto h = exact_hitting_times(complete(2), 0);
  EXPECT_DOUBLE_EQ(h[0], 0.0);
  EXPECT_DOUBLE_EQ(h[1], 1.0);
}

TEST(HittingTimes, CompleteGraphClosedForm) {
  // K_n: hitting time from any non-target node is n - 1.
  const std::size_t n = 9;
  const auto h = exact_hitting_times(complete(n), 2);
  for (NodeId v = 0; v < n; ++v) {
    if (v != 2) {
      EXPECT_NEAR(h[v], static_cast<double>(n - 1), 1e-9);
    }
  }
}

TEST(HittingTimes, PathEndpointQuadratic) {
  // P_n, target one end: from the other end h = (n-1)^2.
  const std::size_t n = 8;
  const auto h = exact_hitting_times(path_graph(n), 0);
  EXPECT_NEAR(h[n - 1], static_cast<double>((n - 1) * (n - 1)), 1e-8);
}

TEST(HittingTimes, MatchesSimulation) {
  Rng rng(1);
  const Graph g = largest_component(erdos_renyi_gnp(30, 0.2, rng));
  const auto h = exact_hitting_times(g, 0);
  // Spot-check two nodes by Monte Carlo.
  for (NodeId start : {NodeId{1}, NodeId{5}}) {
    if (start >= g.num_nodes()) continue;
    RunningStats sim;
    for (int trial = 0; trial < 4000; ++trial) {
      NodeId at = start;
      std::uint64_t steps = 0;
      while (at != 0) {
        at = random_neighbor(g, at, rng);
        ++steps;
      }
      sim.add(static_cast<double>(steps));
    }
    const double se = sim.stddev() / std::sqrt(4000.0);
    EXPECT_NEAR(sim.mean(), h[start], 5.0 * se + 1e-9);
  }
}

class KacFormula : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(KacFormula, LinearSolveAgreesWithClosedForm) {
  Rng rng(2);
  const Graph g = largest_component(GetParam().make(rng));
  if (g.num_nodes() > 120) GTEST_SKIP() << "O(n^3) solve too slow";
  for (NodeId origin : {NodeId{0}, static_cast<NodeId>(g.num_nodes() / 2)}) {
    const double kac = static_cast<double>(g.total_degree()) /
                       static_cast<double>(g.degree(origin));
    EXPECT_NEAR(exact_return_time(g, origin), kac, 1e-7 * kac)
        << GetParam().name << " origin " << origin;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, KacFormula,
    ::testing::ValuesIn(testing::exact_graph_cases()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(TourMoments, MeanIsExactlyN) {
  // Proposition 1, now as an algebraic identity rather than a monte-carlo
  // approximation.
  Rng rng(3);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = largest_component(erdos_renyi_gnp(25, 0.25, rng));
    const auto moments = exact_tour_moments(g, 0);
    EXPECT_NEAR(moments.mean, static_cast<double>(g.num_nodes()),
                1e-8 * g.num_nodes());
    EXPECT_GT(moments.variance, 0.0);
  }
}

TEST(TourMoments, VarianceMatchesSimulation) {
  Rng rng(4);
  const Graph g = largest_component(balanced_random_graph(40, rng));
  const auto moments = exact_tour_moments(g, 0);
  RunningStats sim;
  for (int trial = 0; trial < 30000; ++trial)
    sim.add(random_tour_size(g, 0, rng).value);
  EXPECT_NEAR(sim.mean(), moments.mean, 0.05 * moments.mean);
  EXPECT_NEAR(sim.variance(), moments.variance, 0.15 * moments.variance);
}

TEST(TourMoments, VarianceWithinProposition2Bounds) {
  // The exact variance must respect Prop. 2:
  //   something ~ N^2 - O(N)  <=  Var  <=  N^2 * 2 dbar / lambda_2 + O(N).
  Rng rng(5);
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g = largest_component(erdos_renyi_gnp(30, 0.25, rng));
    const double n = static_cast<double>(g.num_nodes());
    const auto moments = exact_tour_moments(g, 0);
    const double gap = spectral_gap_exact(g);
    EXPECT_LE(moments.variance,
              n * n * 2.0 * g.average_degree() / gap + 2.0 * n);
    EXPECT_GE(moments.variance, (n - 1.0) * (n - 1.0) - 2.0 * n * n / gap -
                                    2.0 * n);
  }
}

TEST(TourMoments, K2IsDeterministic) {
  const auto moments = exact_tour_moments(complete(2), 0);
  EXPECT_NEAR(moments.mean, 2.0, 1e-12);
  EXPECT_NEAR(moments.variance, 0.0, 1e-12);
}

TEST(Hitting, PreconditionsEnforced) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph disconnected = b.build();
  EXPECT_THROW(exact_hitting_times(disconnected, 0), precondition_error);
  EXPECT_THROW(exact_tour_moments(disconnected, 0), precondition_error);
}

}  // namespace
}  // namespace overcount

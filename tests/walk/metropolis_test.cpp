#include "walk/metropolis.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "test_helpers.hpp"
#include "util/tests.hpp"

namespace overcount {
namespace {

TEST(MetropolisStep, StaysOrMovesToNeighbor) {
  Rng rng(1);
  const Graph g = star(10);
  for (int i = 0; i < 200; ++i) {
    const NodeId next = metropolis_step(g, 0, rng);
    EXPECT_TRUE(next == 0 || g.has_edge(0, next));
  }
}

TEST(MetropolisStep, AlwaysAcceptsDownhill) {
  // From a leaf of a star (degree 1) the hub (degree 9) proposal has
  // acceptance 1/9; from the hub, leaf proposals are always accepted.
  Rng rng(2);
  const Graph g = star(10);
  int moved = 0;
  for (int i = 0; i < 1000; ++i)
    if (metropolis_step(g, 0, rng) != 0) ++moved;
  EXPECT_EQ(moved, 1000);  // hub -> leaf always accepted
}

TEST(MetropolisStep, RejectsUphillAtCorrectRate) {
  Rng rng(3);
  const Graph g = star(10);
  int moved = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i)
    if (metropolis_step(g, 3, rng) != 3) ++moved;  // leaf -> hub, rate 1/9
  EXPECT_NEAR(static_cast<double>(moved) / trials, 1.0 / 9.0, 0.01);
}

class MetropolisUniformity
    : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(MetropolisUniformity, LongWalkVisitsUniformly) {
  // The MH walk's stationary distribution is uniform on any connected,
  // non-bipartite graph; we measure visit frequencies of one long walk.
  Rng rng(101);
  const Graph g = largest_component(GetParam().make(rng));
  if (GetParam().name.find("bipartite") != std::string::npos ||
      GetParam().name.find("ring") != std::string::npos ||
      GetParam().name.find("grid") != std::string::npos ||
      GetParam().name.find("star") != std::string::npos)
    GTEST_SKIP() << "bipartite-periodic family: time averages still work "
                    "but need lazy steps";
  const std::size_t n = g.num_nodes();
  std::vector<std::size_t> visits(n, 0);
  NodeId at = 0;
  const std::size_t steps = 400 * n;
  for (std::size_t k = 0; k < steps; ++k) {
    at = metropolis_step(g, at, rng);
    ++visits[at];
  }
  const auto chi = chi_square_uniform(visits);
  // Visits are serially correlated, so the chi-square statistic is inflated
  // relative to iid sampling; bound it loosely instead of using p-values.
  EXPECT_LT(chi.statistic / chi.dof, 30.0) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, MetropolisUniformity,
    ::testing::ValuesIn(testing::estimator_graph_cases()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(MetropolisSampler, SamplesRoughlyUniformOnStar) {
  // The fixed-step DTRW lands on the hub ~50% of the time; MH (with enough
  // steps) should be near 1/n. The star is bipartite, so use an odd/even
  // mix of step counts to wash out parity.
  Rng rng(4);
  const Graph g = star(21);
  std::size_t hub = 0;
  const int draws = 4000;
  Rng len_rng(5);
  for (int i = 0; i < draws; ++i) {
    MetropolisSampler<Graph> s(
        g, 120 + len_rng.uniform_below(2), rng.split());
    if (s.sample(1).node == 0) ++hub;
  }
  const double hub_rate = static_cast<double>(hub) / draws;
  EXPECT_LT(hub_rate, 0.35);  // far below the DTRW's ~0.5
}

TEST(MetropolisSampler, ProbesExceedAcceptedHops) {
  Rng rng(6);
  const Graph g = star(12);
  MetropolisSampler sampler(g, 200, rng.split());
  sampler.sample(1);
  EXPECT_EQ(sampler.probes_sent(), 200u);
  EXPECT_LT(sampler.total_hops(), 200u);  // rejections at the leaves
  EXPECT_GT(sampler.total_hops(), 0u);
}

TEST(MetropolisSampler, RequiresPositiveSteps) {
  Rng rng(7);
  const Graph g = ring(8);
  EXPECT_THROW(MetropolisSampler(g, 0, rng.split()), precondition_error);
}

}  // namespace
}  // namespace overcount

// Regression tests for the OVERCOUNT_HOT_CHECKS contract split
// (util/contracts.hpp): per-step walk-loop preconditions stay live in
// Debug/RelWithDebInfo/sanitizer builds, while plain Release compiles them
// out and relies on the unconditional boundary checks at the batch entry
// points. Both halves are asserted here, so a build-flag regression in
// either direction fails CI: the sanitizer jobs exercise the #if branch,
// the Release job exercises the #else branch and the always-on entry
// checks.
#include <gtest/gtest.h>

#include "core/parallel.hpp"
#include "graph/generators.hpp"
#include "util/contracts.hpp"
#include "walk/walkers.hpp"

namespace overcount {
namespace {

/// Nodes 0-1 connected, node 2 isolated (in range, degree 0).
Graph graph_with_isolated_node() {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  return b.build();
}

#if OVERCOUNT_HOT_CHECKS
// Debug / RelWithDebInfo / sanitizer builds: the walk inner loop itself
// still throws precondition_error on a degree-0 node.
TEST(ContractGating, HotChecksThrowFromWalkInnerLoop) {
  const Graph g = graph_with_isolated_node();
  Rng rng(1);
  EXPECT_THROW(random_neighbor(g, 2, rng), precondition_error);
  EXPECT_THROW(ctrw_sample(g, 2, 1.0, rng), precondition_error);
  EXPECT_THROW(deterministic_ctrw_sample(g, 2, 1.0, rng), precondition_error);
}
#else
TEST(ContractGating, HotChecksCompiledOutInRelease) {
  // Nothing to run on purpose: with the per-step checks compiled out,
  // feeding a degree-0 node into the inner loop is undefined; safety is the
  // batch entry checks' job (next test). This test documents the build
  // configuration so a ctest log shows which branch ran.
  SUCCEED() << "OVERCOUNT_HOT_CHECKS == 0 (Release hot path)";
}
#endif

// Every build, Release included: batch entry points reject invalid origins
// unconditionally, for both the scalar and the kernel path.
TEST(ContractGating, BatchEntryRejectsIsolatedOriginInAllBuilds) {
  const Graph g = graph_with_isolated_node();
  for (std::size_t width : {std::size_t{1}, std::size_t{16}}) {
    ParallelRunner runner(2, width);
    EXPECT_THROW(run_tours_size(g, 2, 32, 7, runner), precondition_error);
    WalkStats stats;
    EXPECT_THROW(run_tours_size_probed(g, 2, 32, 7, runner, stats),
                 precondition_error);
    EXPECT_THROW(run_samples(g, 2, 32, 1.0, 7, runner), precondition_error);
    EXPECT_THROW(run_sc_trials(g, 2, 32, 1.0, 2, 7, runner),
                 precondition_error);
    EXPECT_THROW(run_metropolis_samples(g, 2, 32, 10, 7, runner),
                 precondition_error);
  }
}

TEST(ContractGating, BatchEntryRejectsOutOfRangeOriginInAllBuilds) {
  const Graph g = ring(8);
  ParallelRunner runner(2);
  EXPECT_THROW(run_tours_size(g, 99, 32, 7, runner), precondition_error);
  EXPECT_THROW(run_samples(g, 99, 32, 1.0, 7, runner), precondition_error);
  EXPECT_THROW(run_sc_trials(g, 99, 32, 1.0, 2, 7, runner),
               precondition_error);
}

// The direct kernel entry points carry the same unconditional boundary
// checks (they are per-batch, not per-step).
TEST(ContractGating, KernelEntryRejectsInvalidOriginInAllBuilds) {
  const Graph g = graph_with_isolated_node();
  auto streams = derive_streams(7, 16);
  std::vector<TourEstimate> tours(16);
  EXPECT_THROW(tour_kernel(
                   g, 2, [](NodeId) { return 1.0; }, std::span<Rng>(streams),
                   std::span<TourEstimate>(tours), 16),
               precondition_error);
  std::vector<SampleResult> samples(16);
  EXPECT_THROW(ctrw_kernel(g, 2, 1.0, std::span<Rng>(streams),
                           std::span<SampleResult>(samples), 16),
               precondition_error);
  std::vector<ScTrialRaw> trials(16);
  EXPECT_THROW(sc_kernel(g, 2, 1.0, 2, std::span<Rng>(streams),
                         std::span<ScTrialRaw>(trials), 16),
               precondition_error);
}

}  // namespace
}  // namespace overcount

#include "walk/walkers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"
#include "util/tests.hpp"

namespace overcount {
namespace {

TEST(RandomNeighbor, OnlyReturnsNeighbors) {
  Rng rng(1);
  const Graph g = star(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(random_neighbor(g, 5, rng), 0u);  // leaves only know the hub
    const NodeId n = random_neighbor(g, 0, rng);
    EXPECT_GE(n, 1u);
    EXPECT_LT(n, 10u);
  }
}

// The per-step degree check is a hot-path contract: compiled out in plain
// Release builds (OVERCOUNT_HOT_CHECKS, util/contracts.hpp), where only the
// batch entry points validate origins (tests/walk/contract_gating_test.cpp).
#if OVERCOUNT_HOT_CHECKS
TEST(RandomNeighbor, RequiresNonIsolatedNode) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  Rng rng(1);
  EXPECT_THROW(random_neighbor(g, 2, rng), precondition_error);
}
#endif

TEST(RandomNeighbor, UniformOverNeighbors) {
  Rng rng(2);
  const Graph g = complete(6);
  std::vector<std::size_t> counts(6, 0);
  for (int i = 0; i < 50000; ++i) ++counts[random_neighbor(g, 0, rng)];
  EXPECT_EQ(counts[0], 0u);
  const std::vector<std::size_t> others(counts.begin() + 1, counts.end());
  EXPECT_GT(chi_square_uniform(others).p_value, 1e-4);
}

TEST(DtrwWalker, CountsSteps) {
  Rng rng(3);
  const Graph g = ring(8);
  DtrwWalker walker(g, 0);
  for (int i = 0; i < 10; ++i) walker.step(rng);
  EXPECT_EQ(walker.steps(), 10u);
}

TEST(DtrwWalker, StationaryVisitFrequencyIsDegreeBiased) {
  // On a star with h leaves, the DTRW alternates hub/leaf: the hub holds
  // half the stationary mass.
  Rng rng(4);
  const Graph g = star(11);
  DtrwWalker walker(g, 0);
  std::size_t hub_visits = 0;
  const std::size_t steps = 20000;
  for (std::size_t i = 0; i < steps; ++i)
    if (walker.step(rng) == 0) ++hub_visits;
  EXPECT_NEAR(static_cast<double>(hub_visits) / steps, 0.5, 0.02);
}

class ReturnTimeCycleFormula
    : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(ReturnTimeCycleFormula, MeanReturnTimeIsTotalDegreeOverDegree) {
  // Kac's formula: E_i[T_i] = 1/pi_i = 2|E| / d_i.
  Rng rng(5);
  const Graph g = GetParam().make(rng);
  const NodeId origin = 0;
  const double expected = static_cast<double>(g.total_degree()) /
                          static_cast<double>(g.degree(origin));
  RunningStats stats;
  const int tours = 3000;
  for (int t = 0; t < tours; ++t)
    stats.add(static_cast<double>(measure_return_time(g, origin, rng)));
  // Return times have heavy relative variance; allow 5 standard errors.
  const double stderr_mean = stats.stddev() / std::sqrt(double(tours));
  EXPECT_NEAR(stats.mean(), expected, 5.0 * stderr_mean + 1e-9)
      << "graph=" << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, ReturnTimeCycleFormula,
    ::testing::ValuesIn(testing::estimator_graph_cases()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(CtrwSample, WorksOnDynamicGraph) {
  Rng rng(6);
  DynamicGraph d(complete(12));
  d.remove_node(3);
  for (int i = 0; i < 100; ++i) {
    const auto s = ctrw_sample(d, 0, 5.0, rng);
    EXPECT_TRUE(d.alive(s.node));
  }
}

TEST(CtrwSample, ZeroHopsPossibleForTinyTimer) {
  // With a microscopic timer the origin's first sojourn almost surely
  // exceeds it, so the sample is the origin itself at zero hops.
  Rng rng(7);
  const Graph g = ring(16);
  int at_origin = 0;
  for (int i = 0; i < 200; ++i) {
    const auto s = ctrw_sample(g, 4, 1e-9, rng);
    if (s.node == 4 && s.hops == 0) ++at_origin;
  }
  EXPECT_EQ(at_origin, 200);
}

TEST(CtrwSample, HopCountGrowsWithTimer) {
  Rng rng(8);
  const Graph g = complete(20);
  RunningStats short_hops;
  RunningStats long_hops;
  for (int i = 0; i < 400; ++i) {
    short_hops.add(static_cast<double>(ctrw_sample(g, 0, 1.0, rng).hops));
    long_hops.add(static_cast<double>(ctrw_sample(g, 0, 8.0, rng).hops));
  }
  // Expected hops ~ timer * degree; ratio of means should be ~8.
  EXPECT_GT(long_hops.mean(), 5.0 * short_hops.mean());
}

TEST(CtrwSample, RequiresPositiveTimer) {
  Rng rng(9);
  const Graph g = ring(4);
  EXPECT_THROW(ctrw_sample(g, 0, 0.0, rng), precondition_error);
}

TEST(DeterministicCtrw, BipartiteParityTrap) {
  // Remark 1: on a bipartite d-regular graph, the deterministic-sojourn
  // CTRW's side at time T is fixed by floor(T*d)'s parity — the sampled
  // node NEVER leaves that side, however large T is.
  Rng rng(10);
  const Graph g = bipartite_regular(10, 3, rng);  // d = 3, sides {0..9}/{10..19}
  const double timer = 8.0 + 0.5 / 3.0;  // floor(T*d) = 24, even -> origin side
  for (int i = 0; i < 300; ++i) {
    const auto s = deterministic_ctrw_sample(g, 2, timer, rng);
    EXPECT_LT(s.node, 10u) << "sample escaped the origin's bipartition side";
  }
  const double odd_timer = 8.0 + 1.5 / 3.0;  // floor(T*d) = 25, odd
  for (int i = 0; i < 300; ++i) {
    const auto s = deterministic_ctrw_sample(g, 2, odd_timer, rng);
    EXPECT_GE(s.node, 10u);
  }
}

TEST(DtrwSampleBaseline, StopsAtExactHopCount) {
  Rng rng(11);
  const Graph g = ring(10);
  const auto s = dtrw_sample(g, 0, 7, rng);
  EXPECT_EQ(s.hops, 7u);
  // Parity of the ring walk: after 7 steps the position has odd parity.
  EXPECT_EQ((s.node + 10 - 0) % 2, 1u);
}

}  // namespace
}  // namespace overcount

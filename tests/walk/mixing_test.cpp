#include "walk/mixing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"
#include "walk/exact.hpp"

namespace overcount {
namespace {

TEST(MixingTime, DistanceAtMixingTimeIsEps) {
  Rng rng(1);
  const Graph g = largest_component(balanced_random_graph(60, rng));
  const double eps = 0.05;
  const double t = ctrw_mixing_time(g, eps);
  EXPECT_LE(ctrw_worst_case_distance(g, t), eps + 1e-9);
  EXPECT_GT(ctrw_worst_case_distance(g, t * 0.8), eps);
}

TEST(MixingTime, BoundedByLemma1) {
  Rng rng(2);
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g =
        largest_component(erdos_renyi_gnp(40, 0.15, rng));
    const double eps = 0.02;
    const double t = ctrw_mixing_time(g, eps);
    const double bound =
        lemma1_mixing_bound(g.num_nodes(), spectral_gap_exact(g), eps);
    EXPECT_LE(t, bound + 1e-6);
  }
}

TEST(MixingTime, CompleteGraphMixesFastest) {
  const double t_complete = ctrw_mixing_time(complete(16), 0.05);
  const double t_ring = ctrw_mixing_time(ring(16), 0.05);
  EXPECT_LT(t_complete, t_ring);
}

TEST(MixingTime, GrowsQuadraticallyOnRings) {
  // lambda_2(C_n) ~ (2 pi / n)^2, so t_mix scales ~ n^2.
  const double t16 = ctrw_mixing_time(ring(16), 0.05);
  const double t32 = ctrw_mixing_time(ring(32), 0.05);
  EXPECT_GT(t32 / t16, 2.5);
  EXPECT_LT(t32 / t16, 6.0);
}

TEST(MixingTime, WorstCaseOriginDominates) {
  // On a lollipop (clique + path), the path tip mixes far slower than a
  // clique node: worst-case must reflect the tip.
  GraphBuilder b(10);
  for (NodeId u = 0; u < 6; ++u)
    for (NodeId v = u + 1; v < 6; ++v) b.add_edge(u, v);
  b.add_edge(5, 6);
  b.add_edge(6, 7);
  b.add_edge(7, 8);
  b.add_edge(8, 9);
  const Graph g = b.build();
  const double t = 1.0;
  const double from_clique =
      variation_distance_to_uniform(ctrw_distribution(g, 0, t));
  const double worst = ctrw_worst_case_distance(g, t);
  EXPECT_GE(worst, from_clique);
  const double from_tip =
      variation_distance_to_uniform(ctrw_distribution(g, 9, t));
  EXPECT_NEAR(worst, std::max(from_tip, from_clique), 1e-12);
}

TEST(MixingTime, PreconditionsEnforced) {
  const Graph g = ring(8);
  EXPECT_THROW(ctrw_mixing_time(g, 0.0), precondition_error);
  EXPECT_THROW(ctrw_mixing_time(g, 1.0), precondition_error);
  EXPECT_THROW(lemma1_mixing_bound(8, 0.0, 0.1), precondition_error);
}

}  // namespace
}  // namespace overcount

// The interleaved walk kernel's whole value rests on one claim: it is a
// pure reordering of memory traffic, not of randomness. These tests pin the
// claim bit-for-bit — every per-tour estimate, step count, sample, S&C
// trial and folded WalkStats produced through the batch APIs must equal the
// scalar reference exactly, for widths {1, 2, 4, 16} x threads {1, 2, 8},
// probed and unprobed, including max_steps truncation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/parallel.hpp"
#include "graph/generators.hpp"
#include "walk/kernel.hpp"

namespace overcount {
namespace {

constexpr std::uint64_t kSeed = 0xFEEDBEEF;
const std::size_t kWidths[] = {1, 2, 4, 16};
const unsigned kThreads[] = {1, 2, 8};

Graph test_graph() {
  Rng rng(99);
  return balanced_random_graph(400, rng);
}

void expect_same_walk_stats(const WalkStats& a, const WalkStats& b) {
  EXPECT_EQ(a.walks, b.walks);
  EXPECT_EQ(a.visits, b.visits);
  EXPECT_EQ(a.revisits, b.revisits);
  EXPECT_EQ(a.rejects, b.rejects);
  EXPECT_EQ(a.tours, b.tours);
  EXPECT_EQ(a.completed_tours, b.completed_tours);
  EXPECT_EQ(a.truncated_tours, b.truncated_tours);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.sojourn_time, b.sojourn_time);  // bitwise: tree-reduced
  EXPECT_EQ(a.tour_steps.count, b.tour_steps.count);
  EXPECT_EQ(a.tour_steps.sum, b.tour_steps.sum);
  EXPECT_EQ(a.sample_hops.count, b.sample_hops.count);
  EXPECT_EQ(a.sample_hops.sum, b.sample_hops.sum);
  EXPECT_EQ(a.collision_gaps.count, b.collision_gaps.count);
  EXPECT_EQ(a.collision_gaps.sum, b.collision_gaps.sum);
}

TEST(KernelWidth, ResolutionOrder) {
  EXPECT_EQ(resolved_kernel_width(8), 8u);  // explicit setting wins
  unsetenv("OVERCOUNT_KERNEL_WIDTH");
  EXPECT_EQ(resolved_kernel_width(0), kDefaultKernelWidth);
  setenv("OVERCOUNT_KERNEL_WIDTH", "4", 1);
  EXPECT_EQ(resolved_kernel_width(0), 4u);
  EXPECT_EQ(resolved_kernel_width(32), 32u);  // still beats the environment
  setenv("OVERCOUNT_KERNEL_WIDTH", "not-a-number", 1);
  EXPECT_EQ(resolved_kernel_width(0), kDefaultKernelWidth);
  unsetenv("OVERCOUNT_KERNEL_WIDTH");
}

TEST(KernelEquivalence, ToursBitIdenticalToScalarAcrossWidthsAndThreads) {
  const Graph g = test_graph();
  const std::size_t m = 48;

  // Scalar reference: the pre-kernel path, one stream per walk.
  auto streams = derive_streams(kSeed, m);
  std::vector<TourEstimate> reference;
  reference.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    reference.push_back(random_tour_size(g, 0, streams[i]));

  for (std::size_t width : kWidths) {
    for (unsigned threads : kThreads) {
      SCOPED_TRACE(::testing::Message()
                   << "width=" << width << " threads=" << threads);
      ParallelRunner runner(threads, width);
      const auto batch = run_tours_size(g, 0, m, kSeed, runner);
      ASSERT_EQ(batch.tours.size(), m);
      EXPECT_EQ(batch.stats.tasks, m);  // chunking must not leak
      for (std::size_t i = 0; i < m; ++i) {
        EXPECT_EQ(batch.tours[i].value, reference[i].value);  // bitwise
        EXPECT_EQ(batch.tours[i].steps, reference[i].steps);
        EXPECT_EQ(batch.tours[i].completed, reference[i].completed);
      }
    }
  }
}

TEST(KernelEquivalence, ProbedToursFoldIdenticalWalkStats) {
  const Graph g = test_graph();
  const std::size_t m = 48;

  // Scalar probed reference, folded exactly like the batch APIs fold.
  auto streams = derive_streams(kSeed, m);
  std::vector<WalkStats> per_walk(m);
  std::vector<TourEstimate> reference;
  reference.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    WalkStatsProbe probe(per_walk[i]);
    reference.push_back(random_tour_size(g, 0, streams[i], ~0ULL, probe));
  }
  const WalkStats folded = detail::fold_walk_stats(per_walk);

  for (std::size_t width : kWidths) {
    for (unsigned threads : kThreads) {
      SCOPED_TRACE(::testing::Message()
                   << "width=" << width << " threads=" << threads);
      ParallelRunner runner(threads, width);
      WalkStats walk_stats;
      const auto batch =
          run_tours_size_probed(g, 0, m, kSeed, runner, walk_stats);
      for (std::size_t i = 0; i < m; ++i) {
        EXPECT_EQ(batch.tours[i].value, reference[i].value);
        EXPECT_EQ(batch.tours[i].steps, reference[i].steps);
      }
      expect_same_walk_stats(walk_stats, folded);
      EXPECT_EQ(walk_stats.tours, m);
      EXPECT_EQ(walk_stats.tour_steps.sum, batch.total_steps);
    }
  }
}

TEST(KernelEquivalence, MaxStepsTruncationParity) {
  // On a ring every tour is long, so tight caps truncate aggressively; the
  // kernel must flag and cap exactly like the scalar loop, including the
  // max_steps == 1 edge (first step checked before any accumulation).
  const Graph g = ring(64);
  const std::size_t m = 32;
  for (std::uint64_t max_steps : {std::uint64_t{1}, std::uint64_t{5},
                                  std::uint64_t{200}}) {
    auto streams = derive_streams(kSeed, m);
    std::vector<TourEstimate> reference;
    reference.reserve(m);
    for (std::size_t i = 0; i < m; ++i)
      reference.push_back(random_tour_size(g, 7, streams[i], max_steps));

    for (std::size_t width : kWidths) {
      for (unsigned threads : kThreads) {
        SCOPED_TRACE(::testing::Message()
                     << "max_steps=" << max_steps << " width=" << width
                     << " threads=" << threads);
        ParallelRunner runner(threads, width);
        WalkStats walk_stats;
        const auto batch = run_tours_size_probed(g, 7, m, kSeed, runner,
                                                 walk_stats, max_steps);
        std::size_t truncated = 0;
        for (std::size_t i = 0; i < m; ++i) {
          EXPECT_EQ(batch.tours[i].value, reference[i].value);
          EXPECT_EQ(batch.tours[i].steps, reference[i].steps);
          EXPECT_EQ(batch.tours[i].completed, reference[i].completed);
          if (!reference[i].completed) ++truncated;
        }
        EXPECT_EQ(batch.truncated, truncated);
        EXPECT_EQ(walk_stats.truncated_tours, truncated);
      }
    }
  }
}

TEST(KernelEquivalence, CtrwSamplesBitIdenticalToScalar) {
  const Graph g = test_graph();
  const std::size_t m = 40;
  const double timer = 3.0;

  auto streams = derive_streams(kSeed, m);
  std::vector<SampleResult> reference;
  reference.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    reference.push_back(ctrw_sample(g, 0, timer, streams[i]));

  for (std::size_t width : kWidths) {
    for (unsigned threads : kThreads) {
      SCOPED_TRACE(::testing::Message()
                   << "width=" << width << " threads=" << threads);
      ParallelRunner runner(threads, width);
      const auto batch = run_samples(g, 0, m, timer, kSeed, runner);
      WalkStats walk_stats;
      const auto probed =
          run_samples_probed(g, 0, m, timer, kSeed, runner, walk_stats);
      EXPECT_EQ(batch.stats.tasks, m);
      for (std::size_t i = 0; i < m; ++i) {
        EXPECT_EQ(batch.samples[i].node, reference[i].node);
        EXPECT_EQ(batch.samples[i].hops, reference[i].hops);
        EXPECT_EQ(probed.samples[i].node, reference[i].node);
        EXPECT_EQ(probed.samples[i].hops, reference[i].hops);
      }
      EXPECT_EQ(walk_stats.samples, m);
      EXPECT_EQ(walk_stats.sample_hops.sum, batch.total_hops);
    }
  }
}

TEST(KernelEquivalence, ScTrialsBitIdenticalToScalar) {
  const Graph g = test_graph();
  const std::size_t trials = 24;
  const std::size_t ell = 4;
  const double timer = 2.5;

  auto streams = derive_streams(kSeed, trials);
  std::vector<ScEstimate> reference;
  reference.reserve(trials);
  for (std::size_t i = 0; i < trials; ++i) {
    SampleCollideEstimator estimator(g, 0, timer, ell, streams[i]);
    reference.push_back(estimator.estimate());
  }

  for (std::size_t width : kWidths) {
    for (unsigned threads : kThreads) {
      SCOPED_TRACE(::testing::Message()
                   << "width=" << width << " threads=" << threads);
      ParallelRunner runner(threads, width);
      const auto batch =
          run_sc_trials(g, 0, trials, timer, ell, kSeed, runner);
      WalkStats walk_stats;
      const auto probed = run_sc_trials_probed(g, 0, trials, timer, ell,
                                               kSeed, runner, walk_stats);
      EXPECT_EQ(batch.stats.tasks, trials);
      for (std::size_t i = 0; i < trials; ++i) {
        SCOPED_TRACE(::testing::Message() << "trial=" << i);
        EXPECT_EQ(batch.trials[i].ml, reference[i].ml);  // bitwise
        EXPECT_EQ(batch.trials[i].simple, reference[i].simple);
        EXPECT_EQ(batch.trials[i].n_minus, reference[i].n_minus);
        EXPECT_EQ(batch.trials[i].n_plus, reference[i].n_plus);
        EXPECT_EQ(batch.trials[i].samples, reference[i].samples);
        EXPECT_EQ(batch.trials[i].hops, reference[i].hops);
        EXPECT_EQ(batch.trials[i].replies, reference[i].replies);
        EXPECT_EQ(probed.trials[i].ml, reference[i].ml);
        EXPECT_EQ(probed.trials[i].samples, reference[i].samples);
        EXPECT_EQ(probed.trials[i].hops, reference[i].hops);
      }
      EXPECT_EQ(walk_stats.collisions, trials * ell);
    }
  }
}

// The direct kernel API must agree with itself at any width, including a
// width wider than the batch (lanes simply refill less).
TEST(KernelEquivalence, DirectKernelWidthInvariance) {
  const Graph g = test_graph();
  const std::size_t m = 20;
  std::vector<TourEstimate> by_width[2];
  std::size_t slot = 0;
  for (std::size_t width : {std::size_t{3}, std::size_t{64}}) {
    auto streams = derive_streams(kSeed, m);
    std::vector<TourEstimate> out(m);
    tour_kernel(
        g, 0, [](NodeId) { return 1.0; }, std::span<Rng>(streams),
        std::span<TourEstimate>(out), width);
    by_width[slot++] = std::move(out);
  }
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_EQ(by_width[0][i].value, by_width[1][i].value);
    EXPECT_EQ(by_width[0][i].steps, by_width[1][i].steps);
  }
}

}  // namespace
}  // namespace overcount

// Satellite of the introspection layer: driving RegistryProbes through the
// interleaved walk kernels must stream EXACTLY the metrics the scalar walks
// stream. Counters and histogram buckets are order-independent integer sums,
// so they compare bitwise at any width; the one double gauge (CTRW sojourn
// time) is accumulated in lane-interleaved order by the kernels, so it is
// compared to within floating-point reassociation tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "core/parallel.hpp"
#include "core/random_tour.hpp"
#include "core/sample_collide.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "walk/kernel.hpp"

namespace overcount {
namespace {

Graph test_graph() {
  Rng rng(77);
  return largest_component(balanced_random_graph(400, rng));
}

std::vector<RegistryProbe> make_probes(MetricsRegistry& registry,
                                       std::size_t n) {
  std::vector<RegistryProbe> probes;
  probes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) probes.emplace_back(registry, "walk");
  return probes;
}

void expect_snapshots_match(const MetricsSnapshot& scalar,
                            const MetricsSnapshot& kernel,
                            bool exact_gauges) {
  ASSERT_EQ(scalar.counters.size(), kernel.counters.size());
  for (std::size_t i = 0; i < scalar.counters.size(); ++i) {
    EXPECT_EQ(scalar.counters[i].first, kernel.counters[i].first);
    EXPECT_EQ(scalar.counters[i].second, kernel.counters[i].second)
        << scalar.counters[i].first;
  }
  ASSERT_EQ(scalar.histograms.size(), kernel.histograms.size());
  for (std::size_t i = 0; i < scalar.histograms.size(); ++i) {
    EXPECT_EQ(scalar.histograms[i].first, kernel.histograms[i].first);
    const Log2Histogram& a = scalar.histograms[i].second;
    const Log2Histogram& b = kernel.histograms[i].second;
    EXPECT_EQ(a.count, b.count) << scalar.histograms[i].first;
    EXPECT_EQ(a.sum, b.sum) << scalar.histograms[i].first;
    EXPECT_EQ(a.min, b.min) << scalar.histograms[i].first;
    EXPECT_EQ(a.max, b.max) << scalar.histograms[i].first;
    for (std::size_t k = 0; k < Log2Histogram::kBuckets; ++k)
      EXPECT_EQ(a.buckets[k], b.buckets[k]) << scalar.histograms[i].first;
  }
  ASSERT_EQ(scalar.gauges.size(), kernel.gauges.size());
  for (std::size_t i = 0; i < scalar.gauges.size(); ++i) {
    EXPECT_EQ(scalar.gauges[i].first, kernel.gauges[i].first);
    const double a = scalar.gauges[i].second;
    const double b = kernel.gauges[i].second;
    if (exact_gauges) {
      EXPECT_EQ(a, b) << scalar.gauges[i].first;
    } else {
      EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::abs(a)))
          << scalar.gauges[i].first;
    }
  }
}

TEST(KernelRegistryProbe, TourKernelStreamsScalarMetricsAtAnyWidth) {
  const Graph g = test_graph();
  constexpr std::size_t kWalks = 48;
  constexpr std::uint64_t kSeed = 5;
  auto f = [](NodeId) { return 1.0; };

  MetricsRegistry scalar_registry;
  std::vector<TourEstimate> scalar_out(kWalks);
  {
    auto streams = derive_streams(kSeed, kWalks);
    auto probes = make_probes(scalar_registry, kWalks);
    for (std::size_t i = 0; i < kWalks; ++i)
      scalar_out[i] = random_tour(g, 0, f, streams[i], ~0ULL, probes[i]);
  }
  const auto scalar_snap = scalar_registry.snapshot();
  EXPECT_EQ(scalar_snap.counter_or_zero("walk.tours"), kWalks);

  for (const std::size_t width : {std::size_t{1}, std::size_t{16}}) {
    MetricsRegistry registry;
    auto streams = derive_streams(kSeed, kWalks);
    auto probes = make_probes(registry, kWalks);
    std::vector<TourEstimate> out(kWalks);
    tour_kernel(g, 0, f, std::span<Rng>(streams),
                std::span<TourEstimate>(out), width, ~0ULL,
                std::span<RegistryProbe>(probes));
    for (std::size_t i = 0; i < kWalks; ++i) {
      EXPECT_EQ(out[i].value, scalar_out[i].value);  // bitwise
      EXPECT_EQ(out[i].steps, scalar_out[i].steps);
    }
    // Tours never touch the sojourn gauge, so even gauges compare bitwise.
    expect_snapshots_match(scalar_snap, registry.snapshot(),
                           /*exact_gauges=*/true);
  }
}

TEST(KernelRegistryProbe, ScKernelStreamsScalarMetricsAtAnyWidth) {
  const Graph g = test_graph();
  constexpr std::size_t kTrials = 12;
  constexpr std::size_t kEll = 6;
  constexpr double kTimer = 5.0;
  constexpr std::uint64_t kSeed = 23;

  MetricsRegistry scalar_registry;
  std::vector<ScEstimate> scalar_out(kTrials);
  {
    auto streams = derive_streams(kSeed, kTrials);
    auto probes = make_probes(scalar_registry, kTrials);
    for (std::size_t i = 0; i < kTrials; ++i) {
      SampleCollideEstimator estimator(g, 0, kTimer, kEll, streams[i]);
      scalar_out[i] = estimator.estimate(probes[i]);
    }
  }
  const auto scalar_snap = scalar_registry.snapshot();
  EXPECT_EQ(scalar_snap.counter_or_zero("walk.collisions"), kTrials * kEll);

  for (const std::size_t width : {std::size_t{1}, std::size_t{16}}) {
    MetricsRegistry registry;
    auto streams = derive_streams(kSeed, kTrials);
    auto probes = make_probes(registry, kTrials);
    std::vector<ScTrialRaw> raw(kTrials);
    sc_kernel(g, 0, kTimer, kEll, std::span<Rng>(streams),
              std::span<ScTrialRaw>(raw), width,
              std::span<RegistryProbe>(probes));
    for (std::size_t i = 0; i < kTrials; ++i) {
      EXPECT_EQ(raw[i].samples, scalar_out[i].samples);
      EXPECT_EQ(raw[i].hops, scalar_out[i].hops);
    }
    // The sojourn gauge sums doubles in interleaved lane order; everything
    // else is integer arithmetic and must match bitwise.
    expect_snapshots_match(scalar_snap, registry.snapshot(),
                           /*exact_gauges=*/false);
  }
}

}  // namespace
}  // namespace overcount

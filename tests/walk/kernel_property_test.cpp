// Property fuzz for the interleaved walk kernel: random graph families and
// degenerate topologies, random origins, random truncation caps — the
// kernel-driven batch must agree bit-for-bit with the scalar walks on every
// draw. Runs under ASan and TSan in CI (`ctest -R '^(runtime|obs|kernel)\.'`
// for TSan), so a lane-state bug that corrupts memory or races on the
// shared result vector surfaces here.
#include <gtest/gtest.h>

#include <vector>

#include "core/parallel.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "test_helpers.hpp"
#include "walk/kernel.hpp"

namespace overcount {
namespace {

/// Two k-cliques joined by a single bridge edge: the classic low-conductance
/// degenerate — tours from inside one clique rarely cross, so step counts
/// and truncation behaviour are maximally lopsided.
Graph two_clique_bridge(std::size_t k) {
  GraphBuilder b(2 * k);
  for (std::size_t c = 0; c < 2; ++c)
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = i + 1; j < k; ++j)
        b.add_edge(static_cast<NodeId>(c * k + i),
                   static_cast<NodeId>(c * k + j));
  b.add_edge(static_cast<NodeId>(k - 1), static_cast<NodeId>(k));
  return b.build();
}

std::vector<testing::GraphCase> kernel_fuzz_cases() {
  return {
      {"balanced_lcc_250",
       [](Rng& rng) {
         return largest_component(balanced_random_graph(250, rng));
       },
       0},
      {"scale_free_lcc_250",
       [](Rng& rng) {
         return largest_component(barabasi_albert(250, 2, rng));
       },
       0},
      {"star_40", [](Rng&) { return star(40); }, 40},
      {"path_24", [](Rng&) { return path_graph(24); }, 24},
      {"ring_48", [](Rng&) { return ring(48); }, 48},
      {"two_clique_bridge_12", [](Rng&) { return two_clique_bridge(12); }, 24},
  };
}

class KernelProperty : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(KernelProperty, TourAgreementOnRandomOriginsAndCaps) {
  Rng meta(0xABCD0001);
  for (std::uint64_t round = 0; round < 3; ++round) {
    Rng graph_rng = meta.split();
    const Graph g = GetParam().make(graph_rng);
    ASSERT_GT(g.num_nodes(), 1u);
    const auto origin =
        static_cast<NodeId>(meta.uniform_below(g.num_nodes()));
    if (g.degree(origin) == 0) continue;
    const std::size_t m = 17 + meta.uniform_below(32);
    const std::uint64_t seed = meta.next();
    // Cap roughly at the expected tour length, so some tours truncate.
    const std::uint64_t max_steps =
        1 + meta.uniform_below(2 * g.total_degree() /
                                   std::max<std::size_t>(g.degree(origin), 1) +
                               1);
    SCOPED_TRACE(::testing::Message()
                 << GetParam().name << " round=" << round
                 << " origin=" << origin << " m=" << m
                 << " max_steps=" << max_steps);

    auto streams = derive_streams(seed, m);
    std::vector<TourEstimate> reference;
    reference.reserve(m);
    for (std::size_t i = 0; i < m; ++i)
      reference.push_back(random_tour_size(g, origin, streams[i], max_steps));

    ParallelRunner runner(4, 8);
    const auto batch =
        run_tours_size(g, origin, m, seed, runner, max_steps);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(batch.tours[i].value, reference[i].value);
      EXPECT_EQ(batch.tours[i].steps, reference[i].steps);
      EXPECT_EQ(batch.tours[i].completed, reference[i].completed);
    }
  }
}

TEST_P(KernelProperty, CtrwAgreementOnRandomOrigins) {
  Rng meta(0xABCD0002);
  for (std::uint64_t round = 0; round < 3; ++round) {
    Rng graph_rng = meta.split();
    const Graph g = GetParam().make(graph_rng);
    const auto origin =
        static_cast<NodeId>(meta.uniform_below(g.num_nodes()));
    if (g.degree(origin) == 0) continue;
    const std::size_t m = 17 + meta.uniform_below(24);
    const double timer = 0.5 + 4.0 * meta.uniform();
    const std::uint64_t seed = meta.next();
    SCOPED_TRACE(::testing::Message()
                 << GetParam().name << " round=" << round
                 << " origin=" << origin << " m=" << m << " timer=" << timer);

    auto streams = derive_streams(seed, m);
    std::vector<SampleResult> reference;
    reference.reserve(m);
    for (std::size_t i = 0; i < m; ++i)
      reference.push_back(ctrw_sample(g, origin, timer, streams[i]));

    ParallelRunner runner(4, 8);
    const auto batch = run_samples(g, origin, m, timer, seed, runner);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(batch.samples[i].node, reference[i].node);
      EXPECT_EQ(batch.samples[i].hops, reference[i].hops);
    }
  }
}

TEST_P(KernelProperty, ScAgreementProbedAndUnprobed) {
  Rng meta(0xABCD0003);
  Rng graph_rng = meta.split();
  const Graph g = GetParam().make(graph_rng);
  const auto origin = static_cast<NodeId>(meta.uniform_below(g.num_nodes()));
  if (g.degree(origin) == 0) GTEST_SKIP() << "isolated origin drawn";
  const std::size_t trials = 18;
  const std::size_t ell = 3;
  const double timer = 1.5;
  const std::uint64_t seed = meta.next();

  auto streams = derive_streams(seed, trials);
  std::vector<ScEstimate> reference;
  reference.reserve(trials);
  for (std::size_t i = 0; i < trials; ++i) {
    SampleCollideEstimator estimator(g, origin, timer, ell, streams[i]);
    reference.push_back(estimator.estimate());
  }

  ParallelRunner runner(4, 8);
  WalkStats walk_stats;
  const auto batch = run_sc_trials_probed(g, origin, trials, timer, ell,
                                          seed, runner, walk_stats);
  for (std::size_t i = 0; i < trials; ++i) {
    EXPECT_EQ(batch.trials[i].ml, reference[i].ml);
    EXPECT_EQ(batch.trials[i].simple, reference[i].simple);
    EXPECT_EQ(batch.trials[i].samples, reference[i].samples);
    EXPECT_EQ(batch.trials[i].hops, reference[i].hops);
  }
  EXPECT_EQ(walk_stats.collisions, trials * ell);
}

INSTANTIATE_TEST_SUITE_P(Families, KernelProperty,
                         ::testing::ValuesIn(kernel_fuzz_cases()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace overcount

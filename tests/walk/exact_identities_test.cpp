// Deeper exact-distribution identities: Chapman-Kolmogorov / semigroup
// structure, detailed balance, vertex-transitivity symmetries, and
// small-time Taylor behaviour of the CTRW semigroup — the algebra behind
// every mixing claim the estimators rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "walk/exact.hpp"

namespace overcount {
namespace {

TEST(ExactIdentities, CtrwSemigroupProperty) {
  // exp(-(s+t)L) = exp(-sL) exp(-tL): evolving to s+t equals evolving the
  // time-s distribution for another t. We check it via total variation on
  // the row started at node 0 (evolving a distribution = mixing the rows).
  Rng rng(1);
  const Graph g = largest_component(erdos_renyi_gnp(20, 0.3, rng));
  const double s = 0.7;
  const double t = 1.3;
  const auto direct = ctrw_distribution(g, 0, s + t);
  // Compose: sum_k p_s(0,k) p_t(k, .)
  const auto p_s = ctrw_distribution(g, 0, s);
  std::vector<double> composed(g.num_nodes(), 0.0);
  for (NodeId k = 0; k < g.num_nodes(); ++k) {
    if (p_s[k] == 0.0) continue;
    const auto p_t = ctrw_distribution(g, k, t);
    for (NodeId j = 0; j < g.num_nodes(); ++j)
      composed[j] += p_s[k] * p_t[j];
  }
  EXPECT_LT(variation_distance(direct, composed), 1e-8);
}

TEST(ExactIdentities, DtrwChapmanKolmogorov) {
  Rng rng(2);
  const Graph g = largest_component(erdos_renyi_gnp(18, 0.3, rng));
  const auto direct = dtrw_distribution(g, 0, 9);
  const auto p5 = dtrw_distribution(g, 0, 5);
  std::vector<double> composed(g.num_nodes(), 0.0);
  for (NodeId k = 0; k < g.num_nodes(); ++k) {
    if (p5[k] == 0.0) continue;
    const auto p4 = dtrw_distribution(g, k, 4);
    for (NodeId j = 0; j < g.num_nodes(); ++j)
      composed[j] += p5[k] * p4[j];
  }
  EXPECT_LT(variation_distance(direct, composed), 1e-12);
}

TEST(ExactIdentities, DtrwDetailedBalance) {
  // pi_u P^t(u, v) = pi_v P^t(v, u): reversibility wrt the degree-biased
  // stationary distribution, the keystone of the Prop. 1 proof.
  Rng rng(3);
  const Graph g = largest_component(erdos_renyi_gnp(16, 0.35, rng));
  const auto pi = dtrw_stationary(g);
  const std::size_t t = 6;
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    const auto from_u = dtrw_distribution(g, u, t);
    for (NodeId v = 0; v < g.num_nodes(); v += 5) {
      const auto from_v = dtrw_distribution(g, v, t);
      EXPECT_NEAR(pi[u] * from_u[v], pi[v] * from_v[u], 1e-12)
          << "u=" << u << " v=" << v;
    }
  }
}

TEST(ExactIdentities, CtrwSymmetricKernel) {
  // L is symmetric, so exp(-tL) is symmetric: p_t(u, v) = p_t(v, u) — the
  // CTRW's uniform stationarity in kernel form.
  Rng rng(4);
  const Graph g = largest_component(erdos_renyi_gnp(15, 0.35, rng));
  const double t = 1.1;
  for (NodeId u = 0; u < g.num_nodes(); u += 2) {
    const auto from_u = ctrw_distribution(g, u, t);
    for (NodeId v = 0; v < g.num_nodes(); v += 3) {
      const auto from_v = ctrw_distribution(g, v, t);
      EXPECT_NEAR(from_u[v], from_v[u], 1e-9);
    }
  }
}

TEST(ExactIdentities, VertexTransitivitySymmetry) {
  // On a cycle, the distribution from any origin is a rotation of the
  // distribution from 0.
  const Graph g = ring(12);
  const double t = 2.0;
  const auto from_0 = ctrw_distribution(g, 0, t);
  const auto from_5 = ctrw_distribution(g, 5, t);
  for (NodeId v = 0; v < 12; ++v)
    EXPECT_NEAR(from_5[(v + 5) % 12], from_0[v], 1e-9);
}

TEST(ExactIdentities, SmallTimeTaylor) {
  // p_t(v, v) = 1 - d_v t + O(t^2) and p_t(v, u) = t + O(t^2) per edge.
  const Graph g = star(6);
  const double t = 1e-4;
  const auto from_hub = ctrw_distribution(g, 0, t);
  EXPECT_NEAR(from_hub[0], 1.0 - 5.0 * t, 5e-7);
  for (NodeId leaf = 1; leaf < 6; ++leaf)
    EXPECT_NEAR(from_hub[leaf], t, 5e-7);
  const auto from_leaf = ctrw_distribution(g, 3, t);
  EXPECT_NEAR(from_leaf[3], 1.0 - t, 5e-7);
  EXPECT_NEAR(from_leaf[0], t, 5e-7);
}

TEST(ExactIdentities, UniformIsExactFixedPoint) {
  // Evolving the uniform distribution leaves it invariant: check by
  // symmetry (column sums of the kernel are 1).
  Rng rng(5);
  const Graph g = largest_component(erdos_renyi_gnp(14, 0.4, rng));
  const double t = 0.9;
  std::vector<double> evolved(g.num_nodes(), 0.0);
  const double u = 1.0 / static_cast<double>(g.num_nodes());
  for (NodeId k = 0; k < g.num_nodes(); ++k) {
    const auto row = ctrw_distribution(g, k, t);
    for (NodeId j = 0; j < g.num_nodes(); ++j) evolved[j] += u * row[j];
  }
  for (NodeId j = 0; j < g.num_nodes(); ++j)
    EXPECT_NEAR(evolved[j], u, 1e-9);
}

TEST(ExactIdentities, DegreeBiasedIsDtrwFixedPoint) {
  Rng rng(6);
  const Graph g = largest_component(erdos_renyi_gnp(14, 0.4, rng));
  const auto pi = dtrw_stationary(g);
  std::vector<double> evolved(g.num_nodes(), 0.0);
  for (NodeId k = 0; k < g.num_nodes(); ++k) {
    const auto row = dtrw_distribution(g, k, 1);
    for (NodeId j = 0; j < g.num_nodes(); ++j) evolved[j] += pi[k] * row[j];
  }
  for (NodeId j = 0; j < g.num_nodes(); ++j)
    EXPECT_NEAR(evolved[j], pi[j], 1e-12);
}

}  // namespace
}  // namespace overcount

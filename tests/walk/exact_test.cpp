#include "walk/exact.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"
#include "test_helpers.hpp"

namespace overcount {
namespace {

double total_mass(const std::vector<double>& p) {
  double s = 0.0;
  for (double x : p) s += x;
  return s;
}

TEST(DtrwDistribution, IsAProbabilityDistribution) {
  Rng rng(1);
  const Graph g = largest_component(balanced_random_graph(40, rng));
  for (std::size_t steps : {0u, 1u, 5u, 20u}) {
    const auto p = dtrw_distribution(g, 0, steps);
    EXPECT_NEAR(total_mass(p), 1.0, 1e-12);
    for (double x : p) EXPECT_GE(x, 0.0);
  }
}

TEST(DtrwDistribution, StepZeroIsPointMass) {
  const auto p = dtrw_distribution(ring(5), 3, 0);
  EXPECT_DOUBLE_EQ(p[3], 1.0);
}

TEST(DtrwDistribution, ConvergesToDegreeBiasedStationary) {
  // Aperiodic example: star plus an extra edge to break bipartiteness.
  GraphBuilder b(6);
  for (NodeId v = 1; v < 6; ++v) b.add_edge(0, v);
  b.add_edge(1, 2);
  const Graph g = b.build();
  const auto p = dtrw_distribution(g, 0, 400);
  const auto pi = dtrw_stationary(g);
  EXPECT_LT(variation_distance(p, pi), 1e-8);
}

TEST(DtrwDistribution, BipartiteGraphNeverMixes) {
  const Graph g = ring(6);  // bipartite
  const auto p = dtrw_distribution(g, 0, 101);
  // Odd number of steps: all mass on the odd side.
  EXPECT_NEAR(p[0] + p[2] + p[4], 0.0, 1e-12);
  EXPECT_GE(variation_distance_to_uniform(p), 0.5 - 1e-12);
}

TEST(CtrwDistribution, IsAProbabilityDistribution) {
  Rng rng(2);
  const Graph g = largest_component(erdos_renyi_gnp(30, 0.15, rng));
  for (double t : {0.0, 0.3, 1.0, 5.0}) {
    const auto p = ctrw_distribution(g, 0, t);
    EXPECT_NEAR(total_mass(p), 1.0, 1e-9);
    for (double x : p) EXPECT_GE(x, -1e-15);
  }
}

TEST(CtrwDistribution, ConvergesToUniformEvenOnBipartite) {
  // The exponential-sojourn CTRW has no parity problem: it mixes to the
  // UNIFORM distribution even on bipartite graphs (the key property behind
  // the paper's sampler).
  const Graph g = ring(6);
  const auto p = ctrw_distribution(g, 0, 50.0);
  EXPECT_LT(variation_distance_to_uniform(p), 1e-6);
}

TEST(CtrwDistribution, HeterogeneousDegreesStillUniform) {
  const Graph g = star(9);
  const auto p = ctrw_distribution(g, 0, 80.0);
  EXPECT_LT(variation_distance_to_uniform(p), 1e-6);
}

class Lemma1Bound : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(Lemma1Bound, VariationDistanceBoundedBySqrtNExpGapT) {
  Rng rng(3);
  const Graph g = GetParam().make(rng);
  if (g.num_nodes() > 70) GTEST_SKIP() << "dense spectrum too slow";
  const double gap = spectral_gap_exact(g);
  const double sqrt_n = std::sqrt(static_cast<double>(g.num_nodes()));
  for (double t : {0.2, 0.5, 1.0, 2.0, 4.0}) {
    const auto p = ctrw_distribution(g, 0, t);
    const double dist = variation_distance_to_uniform(p);
    EXPECT_LE(dist, sqrt_n * std::exp(-gap * t) + 1e-9)
        << GetParam().name << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ExactFamilies, Lemma1Bound,
    ::testing::ValuesIn(testing::exact_graph_cases()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(Lemma1, DistanceDecreasesInT) {
  Rng rng(4);
  const Graph g = largest_component(balanced_random_graph(40, rng));
  double prev = 1.0;
  for (double t : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double dist =
        variation_distance_to_uniform(ctrw_distribution(g, 0, t));
    EXPECT_LE(dist, prev + 1e-9);
    prev = dist;
  }
}

TEST(DeterministicCtrwExact, RegularGraphReducesToDtrw) {
  const Graph g = ring(8);  // 2-regular: sojourn 1/2 everywhere
  const auto p = deterministic_ctrw_distribution_regular(g, 0, 3.6);
  const auto q = dtrw_distribution(g, 0, 7);  // floor(3.6 * 2) = 7
  EXPECT_LT(variation_distance(p, q), 1e-12);
}

TEST(DeterministicCtrwExact, Remark1CounterexampleIsQuantitative) {
  // On a bipartite regular graph the deterministic-sojourn CTRW at any time
  // t keeps variation distance >= |1/2 - |V1|/n| + ... >= 1/2 for equal
  // sides, no matter how large t is — while the exponential-sojourn CTRW's
  // distance vanishes.
  Rng rng(5);
  const Graph g = bipartite_regular(8, 3, rng);
  for (double t : {5.0, 10.0, 20.0}) {
    const auto det = deterministic_ctrw_distribution_regular(g, 0, t);
    EXPECT_GE(variation_distance_to_uniform(det), 0.5 - 1e-9);
    const auto exp_sojourn = ctrw_distribution(g, 0, t);
    // The exponential-sojourn walk mixes at rate lambda_2 while the
    // deterministic one never leaves the parity class.
    EXPECT_LT(variation_distance_to_uniform(exp_sojourn), 0.05);
  }
  EXPECT_LT(variation_distance_to_uniform(ctrw_distribution(g, 0, 60.0)),
            1e-4);
}

TEST(DeterministicCtrwExact, RejectsIrregularGraph) {
  EXPECT_THROW(deterministic_ctrw_distribution_regular(star(5), 0, 1.0),
               precondition_error);
}

TEST(VariationDistance, BasicProperties) {
  const std::vector<double> p{1.0, 0.0};
  const std::vector<double> q{0.0, 1.0};
  EXPECT_DOUBLE_EQ(variation_distance(p, q), 1.0);
  EXPECT_DOUBLE_EQ(variation_distance(p, p), 0.0);
  const std::vector<double> u{0.5, 0.5};
  EXPECT_DOUBLE_EQ(variation_distance_to_uniform(p), 0.5);
  EXPECT_DOUBLE_EQ(variation_distance_to_uniform(u), 0.0);
}

TEST(DtrwStationary, SumsToOneAndMatchesDegrees) {
  Rng rng(6);
  const Graph g = balanced_random_graph(50, rng);
  const auto pi = dtrw_stationary(g);
  EXPECT_NEAR(total_mass(pi), 1.0, 1e-12);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_NEAR(pi[v],
                static_cast<double>(g.degree(v)) /
                    static_cast<double>(g.total_degree()),
                1e-15);
}

}  // namespace
}  // namespace overcount

// BudgetPlanner unit contract: the paper's error formulas invert to the
// documented budgets, clamping is honest (the reported epsilon matches the
// clamped budget, never the request), and profiling fills the formula
// inputs consistently.
#include "serve/budget.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"

namespace overcount {
namespace {

GraphProfile toy_profile() {
  GraphProfile p;
  p.nodes = 100;
  p.avg_degree = 4.0;
  p.lambda2 = 0.5;
  p.origin_degree = 4;
  p.version = 7;
  return p;
}

TEST(BudgetPlanner, TourBudgetInvertsThePaperFormula) {
  const GraphProfile p = toy_profile();
  BudgetPlanner planner;
  const double eps = 0.2;
  const double delta = 0.1;
  const BudgetPlan plan = planner.plan_tours(p, eps, delta);
  // m = ceil(2 d_bar / (lambda2 eps^2 delta)) = ceil(8 / (0.5*0.04*0.1)).
  const auto expected = static_cast<std::size_t>(
      std::ceil(2.0 * p.avg_degree / (p.lambda2 * eps * eps * delta)));
  EXPECT_EQ(plan.walks, expected);
  // The achieved half-width never exceeds the request...
  EXPECT_LE(plan.epsilon, eps + 1e-12);
  // ...and re-plugging m into eps(m) reproduces it.
  EXPECT_DOUBLE_EQ(plan.epsilon,
                   BudgetPlanner::tour_epsilon(p, plan.walks, delta));
}

TEST(BudgetPlanner, TighterTargetsCostMoreWalks) {
  const GraphProfile p = toy_profile();
  BudgetPlanner planner;
  const auto loose = planner.plan_tours(p, 0.5, 0.1);
  const auto tight = planner.plan_tours(p, 0.1, 0.1);
  const auto confident = planner.plan_tours(p, 0.5, 0.01);
  EXPECT_GT(tight.walks, loose.walks);
  EXPECT_GT(confident.walks, loose.walks);
}

TEST(BudgetPlanner, ClampReportsTheEpsilonActuallyBought) {
  const GraphProfile p = toy_profile();
  BudgetPlanner::Limits limits;
  limits.min_walks = 8;
  limits.max_walks = 64;
  BudgetPlanner planner(limits);
  // A target far tighter than 64 walks can deliver: clamped to the cap,
  // and the reported epsilon is the (larger) one 64 walks achieve.
  const auto capped = planner.plan_tours(p, 0.01, 0.1);
  EXPECT_EQ(capped.walks, 64u);
  EXPECT_DOUBLE_EQ(capped.epsilon,
                   BudgetPlanner::tour_epsilon(p, 64, 0.1));
  EXPECT_GT(capped.epsilon, 0.01);
  // A target so loose the floor takes over: epsilon only improves.
  const auto floored = planner.plan_tours(p, 5.0, 0.5);
  EXPECT_EQ(floored.walks, 8u);
  EXPECT_LE(floored.epsilon, 5.0);
}

TEST(BudgetPlanner, TourCostUsesExpectedReturnTime) {
  const GraphProfile p = toy_profile();
  BudgetPlanner planner;
  const auto plan = planner.plan_tours(p, 0.2, 0.1);
  // E[T] = n d_bar / d_origin = 100 steps per tour here.
  const double per_tour = static_cast<double>(p.nodes) * p.avg_degree /
                          static_cast<double>(p.origin_degree);
  EXPECT_EQ(plan.expected_steps,
            static_cast<std::uint64_t>(
                std::ceil(per_tour * static_cast<double>(plan.walks))));
}

TEST(BudgetPlanner, ScBudgetInvertsTheChebyshevBound) {
  const GraphProfile p = toy_profile();
  BudgetPlanner planner;
  const double eps = 0.25;
  const double delta = 0.1;
  const std::size_t ell = 16;
  const auto plan = planner.plan_sc(p, eps, delta, ell, /*timer=*/10.0);
  const auto expected = static_cast<std::size_t>(
      std::ceil(1.0 / (static_cast<double>(ell) * eps * eps * delta)));
  EXPECT_EQ(plan.walks, std::max<std::size_t>(expected, 8));
  EXPECT_LE(plan.epsilon, eps + 1e-12);
  EXPECT_DOUBLE_EQ(plan.epsilon,
                   BudgetPlanner::sc_epsilon(plan.walks, ell, delta));
  EXPECT_GT(plan.expected_steps, 0u);
}

TEST(ProfileGraph, HintSkipsLanczosAndFillsShape) {
  const Graph g = ring(12);
  const GraphProfile p = profile_graph(g, 0, /*version=*/42,
                                       /*lambda2_hint=*/0.33);
  EXPECT_EQ(p.nodes, 12u);
  EXPECT_DOUBLE_EQ(p.avg_degree, 2.0);
  EXPECT_DOUBLE_EQ(p.lambda2, 0.33);  // hint taken verbatim, no solve
  EXPECT_EQ(p.origin_degree, 2u);
  EXPECT_EQ(p.version, 42u);
}

TEST(ProfileGraph, LanczosGapMatchesExactOnSmallGraph) {
  const Graph g = ring(12);
  const GraphProfile p = profile_graph(g, 0, 0);
  EXPECT_NEAR(p.lambda2, spectral_gap_exact(g), 1e-6);
}

}  // namespace
}  // namespace overcount

// EstimateService acceptance contract:
//  (a) a cache hit is bit-identical to the batch result it came from;
//  (b) N concurrent identical misses coalesce into exactly ONE batch;
//  (c) admission control load-sheds (kRejected + retry hint) instead of
//      queueing unboundedly;
//  (d) a DynamicGraph version() bump invalidates cached entries;
// plus deadline handling, request validation, determinism across runner
// thread counts, and clean shutdown semantics.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "serve/source.hpp"

namespace overcount {
namespace {

/// Deterministic manual clock shared with the service under test.
struct TestClock {
  std::shared_ptr<std::atomic<std::uint64_t>> us =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  std::function<std::uint64_t()> fn() const {
    auto ptr = us;
    return [ptr] { return ptr->load(std::memory_order_relaxed); };
  }
  void advance(std::uint64_t delta) {
    us->fetch_add(delta, std::memory_order_relaxed);
  }
};

ServiceConfig fast_config(const TestClock& clock, unsigned threads = 2) {
  ServiceConfig config;
  config.threads = threads;
  config.queue_capacity = 8;
  config.lambda2_hint = 0.0;
  config.seed = 7;
  config.now_us = clock.fn();
  return config;
}

EstimateRequest size_request(double epsilon = 0.3, double delta = 0.2) {
  EstimateRequest req;
  req.kind = QueryKind::kSize;
  req.method = EstimateMethod::kRandomTour;
  req.epsilon = epsilon;
  req.delta = delta;
  return req;
}

TEST(EstimateService, AnswersSizeWithinPlannedHalfWidth) {
  const Graph g = complete(16);
  TestClock clock;
  EstimateService service(static_graph_source(g), fast_config(clock));
  const EstimateResponse resp = service.query(size_request());
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp.cache_hit);
  EXPECT_GT(resp.walks, 0u);
  EXPECT_LE(resp.epsilon, 0.3 + 1e-12);
  // Complete graph, generous budget: the estimate lands near n = 16.
  EXPECT_NEAR(resp.value, 16.0, 16.0 * resp.epsilon);
  EXPECT_TRUE(service.warmed());
}

// Acceptance (a): the cached response repeats the batch result EXACTLY —
// same bits, not merely close — along with its provenance.
TEST(EstimateService, CacheHitIsBitIdenticalToTheBatchResult) {
  const Graph g = complete(16);
  TestClock clock;
  EstimateService service(static_graph_source(g), fast_config(clock));
  const EstimateResponse first = service.query(size_request());
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first.cache_hit);
  clock.advance(1000);
  const EstimateResponse second = service.query(size_request());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.value, first.value);  // bit-for-bit, not NEAR
  EXPECT_EQ(second.epsilon, first.epsilon);
  EXPECT_EQ(second.walks, first.walks);
  EXPECT_EQ(second.graph_version, first.graph_version);
  EXPECT_EQ(second.age_us, 1000u);
  const auto counters = service.metrics().snapshot();
  EXPECT_EQ(counters.counter_or_zero("serve.batches"), 1u);
  EXPECT_EQ(counters.counter_or_zero("serve.cache_hits"), 1u);
}

// Acceptance (b): single-flight — N concurrent identical misses issue
// exactly one batch; everyone gets the same (bit-identical) answer.
TEST(EstimateService, SingleFlightCoalescesConcurrentIdenticalMisses) {
  const Graph g = complete(16);
  TestClock clock;
  EstimateService service(static_graph_source(g), fast_config(clock));
  service.set_paused(true);  // hold the broker so the misses pile up
  constexpr int kCallers = 6;
  std::vector<std::future<EstimateResponse>> futures;
  for (int i = 0; i < kCallers; ++i)
    futures.push_back(service.submit(size_request()));
  EXPECT_EQ(service.queue_depth(), 1u);  // one batch despite six callers
  service.set_paused(false);
  std::vector<EstimateResponse> responses;
  for (auto& f : futures) responses.push_back(f.get());
  int coalesced = 0;
  for (const auto& r : responses) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value, responses.front().value);
    EXPECT_FALSE(r.cache_hit);
    if (r.coalesced) ++coalesced;
  }
  EXPECT_EQ(coalesced, kCallers - 1);  // everyone but the initiator rode
  const auto counters = service.metrics().snapshot();
  EXPECT_EQ(counters.counter_or_zero("serve.batches"), 1u);
  EXPECT_EQ(counters.counter_or_zero("serve.coalesced"),
            static_cast<std::uint64_t>(kCallers - 1));
}

// Acceptance (c): a full queue load-sheds with kRejected + retry hint;
// the queue depth never exceeds its bound.
TEST(EstimateService, AdmissionControlRejectsWhenQueueIsFull) {
  const Graph g = complete(16);
  TestClock clock;
  ServiceConfig config = fast_config(clock);
  config.queue_capacity = 2;
  EstimateService service(static_graph_source(g), config);
  service.set_paused(true);
  // Distinct epsilons so nothing coalesces: each submission is its own
  // batch, so the third must be shed, not queued.
  auto f1 = service.submit(size_request(0.30));
  auto f2 = service.submit(size_request(0.31));
  auto f3 = service.submit(size_request(0.32));
  const EstimateResponse shed = f3.get();  // resolves immediately
  EXPECT_EQ(shed.status, ServeStatus::kRejected);
  EXPECT_FALSE(shed.ok());
  EXPECT_GT(shed.retry_after_us, 0u);
  EXPECT_EQ(service.queue_depth(), 2u);
  service.set_paused(false);
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  const auto counters = service.metrics().snapshot();
  EXPECT_EQ(counters.counter_or_zero("serve.admission_rejects"), 1u);
}

TEST(EstimateService, AdmissionControlChargesExpectedSteps) {
  const Graph g = complete(16);
  TestClock clock;
  ServiceConfig config = fast_config(clock);
  config.max_outstanding_steps = 1;  // absurdly tight step budget
  EstimateService service(static_graph_source(g), config);
  // Before any profile exists the step charge is unknown (0): admitted.
  ASSERT_TRUE(service.query(size_request()).ok());
  // Now the profile prices the next batch far above 1 step: shed.
  service.set_paused(true);
  EstimateRequest req = size_request();
  req.allow_cached = false;  // force a batch despite the cached entry
  const EstimateResponse shed = service.submit(req).get();
  EXPECT_EQ(shed.status, ServeStatus::kRejected);
  service.set_paused(false);
}

// Acceptance (d): churn bumps DynamicGraph::version(); the next query sees
// the stale entry evicted and runs a fresh batch at the new version.
TEST(EstimateService, GraphVersionBumpInvalidatesCache) {
  DynamicGraph dg{ring(16)};
  std::mutex graph_mutex;
  TestClock clock;
  EstimateService service(dynamic_graph_source(dg, graph_mutex),
                          fast_config(clock));
  const EstimateResponse before = service.query(size_request());
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(service.query(size_request()).cache_hit);  // warm entry
  {
    std::lock_guard lock(graph_mutex);
    dg.add_edge(0, 8);  // one churn event: version moves on
  }
  const EstimateResponse after = service.query(size_request());
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.cache_hit);  // stale entry could not be served
  EXPECT_GT(after.graph_version, before.graph_version);
  const auto counters = service.metrics().snapshot();
  EXPECT_GE(counters.counter_or_zero("serve.cache_invalidations"), 1u);
  EXPECT_EQ(counters.counter_or_zero("serve.batches"), 2u);
}

TEST(EstimateService, ExpiredDeadlineIsRefusedUpFront) {
  const Graph g = complete(16);
  TestClock clock;
  clock.advance(10'000);
  EstimateService service(static_graph_source(g), fast_config(clock));
  EstimateRequest req = size_request();
  req.deadline_us = 5'000;  // already in the past
  const EstimateResponse resp = service.query(req);
  EXPECT_EQ(resp.status, ServeStatus::kDeadlineMiss);
  const auto counters = service.metrics().snapshot();
  EXPECT_EQ(counters.counter_or_zero("serve.batches"), 0u);  // no walk spent
}

TEST(EstimateService, InvalidRequestsFailFast) {
  const Graph g = complete(16);
  TestClock clock;
  EstimateService service(static_graph_source(g), fast_config(clock));
  EstimateRequest bad = size_request();
  bad.epsilon = 0.0;
  EXPECT_EQ(service.query(bad).status, ServeStatus::kFailed);
  // Sample & Collide cannot answer degree sums.
  EstimateRequest mismatch;
  mismatch.kind = QueryKind::kDegreeSum;
  mismatch.method = EstimateMethod::kSampleCollide;
  EXPECT_EQ(service.query(mismatch).status, ServeStatus::kFailed);
}

TEST(EstimateService, DegreeSumAndSampleCollideQueriesWork) {
  const Graph g = complete(16);
  TestClock clock;
  EstimateService service(static_graph_source(g), fast_config(clock));
  EstimateRequest degree_sum = size_request();
  degree_sum.kind = QueryKind::kDegreeSum;
  const EstimateResponse ds = service.query(degree_sum);
  ASSERT_TRUE(ds.ok());
  // Sum of degrees of K16 is 16*15 = 240; generous half-width.
  EXPECT_NEAR(ds.value, 240.0, 240.0 * ds.epsilon);

  EstimateRequest sc = size_request(/*epsilon=*/0.5, /*delta=*/0.3);
  sc.method = EstimateMethod::kSampleCollide;
  const EstimateResponse sr = service.query(sc);
  ASSERT_TRUE(sr.ok());
  EXPECT_GT(sr.value, 0.0);
  EXPECT_GT(sr.walks, 0u);
}

TEST(EstimateService, ResponsesAreIdenticalAcrossRunnerThreadCounts) {
  const Graph g = complete(16);
  auto run_sequence = [&](unsigned threads) {
    TestClock clock;
    EstimateService service(static_graph_source(g),
                            fast_config(clock, threads));
    std::vector<double> values;
    values.push_back(service.query(size_request()).value);
    EstimateRequest ds = size_request(0.4);
    ds.kind = QueryKind::kDegreeSum;
    values.push_back(service.query(ds).value);
    EstimateRequest fresh = size_request();
    fresh.allow_cached = false;
    values.push_back(service.query(fresh).value);
    return values;
  };
  const auto single = run_sequence(1);
  const auto quad = run_sequence(4);
  ASSERT_EQ(single.size(), quad.size());
  for (std::size_t i = 0; i < single.size(); ++i)
    EXPECT_EQ(single[i], quad[i]) << "query " << i;  // bit-for-bit
}

TEST(EstimateService, RefreshOnceRecomputesAgingEntries) {
  const Graph g = complete(16);
  TestClock clock;
  ServiceConfig config = fast_config(clock);
  config.freshness.base_ttl_us = 1'000'000;
  config.refresh_at_fraction = 0.5;
  EstimateService service(static_graph_source(g), config);
  ASSERT_TRUE(service.query(size_request()).ok());
  // Young entry: nothing to refresh yet.
  EXPECT_EQ(service.refresh_once(), 0u);
  clock.advance(600'000);  // past refresh_at_fraction * ttl, inside ttl
  EXPECT_EQ(service.refresh_once(), 1u);
  // The refresh runs in the background; wait for it by forcing a fresh
  // query and checking the refresh landed as a batch.
  EstimateRequest fresh = size_request();
  fresh.allow_cached = false;
  ASSERT_TRUE(service.query(fresh).ok());
  const auto counters = service.metrics().snapshot();
  EXPECT_GE(counters.counter_or_zero("serve.refreshes"), 1u);
}

TEST(EstimateService, StopFailsQueuedWaitersAndRejectsNewWork) {
  const Graph g = complete(16);
  TestClock clock;
  auto service = std::make_unique<EstimateService>(static_graph_source(g),
                                                   fast_config(clock));
  service->set_paused(true);
  auto queued = service->submit(size_request());
  service->stop();
  EXPECT_EQ(queued.get().status, ServeStatus::kFailed);
  EXPECT_EQ(service->submit(size_request()).get().status,
            ServeStatus::kRejected);
  service.reset();  // double-stop through the destructor is safe
}

}  // namespace
}  // namespace overcount

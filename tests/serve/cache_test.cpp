// EstimateCache contract: hits require accuracy AND version AND freshness
// at once; misses are classified; version-stale entries are evicted; the
// TTL shrinks under observed churn and recovers when churn stops.
#include "serve/cache.hpp"

#include <gtest/gtest.h>

namespace overcount {
namespace {

CacheKey size_key() {
  return CacheKey{QueryKind::kSize, EstimateMethod::kRandomTour};
}

CacheEntry entry_at(std::uint64_t version, std::uint64_t now_us,
                    double epsilon = 0.1, double delta = 0.05) {
  CacheEntry e;
  e.value = 123.0;
  e.epsilon = epsilon;
  e.delta = delta;
  e.walks = 64;
  e.graph_version = version;
  e.computed_at_us = now_us;
  e.seed = 99;
  return e;
}

TEST(EstimateCache, EmptyLookupClassifiesAsMissEmpty) {
  EstimateCache cache;
  auto r = cache.find(size_key(), 0.2, 0.05, /*version=*/0, /*now=*/0);
  EXPECT_EQ(r.outcome, CacheOutcome::kMissEmpty);
  EXPECT_FALSE(r.hit());
}

TEST(EstimateCache, FreshMatchingEntryHitsWithAge) {
  EstimateCache cache;
  cache.observe_version(5, 1000);
  cache.insert(size_key(), entry_at(5, 1000));
  auto r = cache.find(size_key(), 0.2, 0.05, 5, 1500);
  ASSERT_TRUE(r.hit());
  EXPECT_DOUBLE_EQ(r.entry->value, 123.0);
  EXPECT_EQ(r.age_us, 500u);
}

TEST(EstimateCache, LooserRequestRidesTighterEntryButNotViceVersa) {
  EstimateCache cache;
  cache.insert(size_key(), entry_at(5, 0, /*epsilon=*/0.1, /*delta=*/0.05));
  // Looser target than the stored batch: hit.
  EXPECT_TRUE(cache.find(size_key(), 0.3, 0.1, 5, 10).hit());
  // Tighter epsilon than the stored batch delivers: miss, entry retained.
  auto tighter = cache.find(size_key(), 0.05, 0.05, 5, 10);
  EXPECT_EQ(tighter.outcome, CacheOutcome::kMissEpsilon);
  // Tighter delta, same epsilon: also a miss.
  auto surer = cache.find(size_key(), 0.1, 0.01, 5, 10);
  EXPECT_EQ(surer.outcome, CacheOutcome::kMissEpsilon);
  EXPECT_NE(cache.peek(size_key()), nullptr);
}

TEST(EstimateCache, VersionBumpInvalidatesAndEvicts) {
  EstimateCache cache;
  cache.insert(size_key(), entry_at(5, 0));
  auto stale = cache.find(size_key(), 0.2, 0.05, /*version=*/6, /*now=*/10);
  EXPECT_EQ(stale.outcome, CacheOutcome::kMissStaleVersion);
  // Evicted outright: the version is monotone, the entry can never match
  // again, so the next lookup is a cold miss.
  EXPECT_EQ(cache.peek(size_key()), nullptr);
  auto again = cache.find(size_key(), 0.2, 0.05, 6, 10);
  EXPECT_EQ(again.outcome, CacheOutcome::kMissEmpty);
}

TEST(EstimateCache, ExpiresAfterTtlButKeepsTheEntry) {
  FreshnessPolicy policy;
  policy.base_ttl_us = 1000;
  policy.min_ttl_us = 10;
  EstimateCache cache(policy);
  cache.insert(size_key(), entry_at(5, 0));
  EXPECT_TRUE(cache.find(size_key(), 0.2, 0.05, 5, 999).hit());
  auto expired = cache.find(size_key(), 0.2, 0.05, 5, 1500);
  EXPECT_EQ(expired.outcome, CacheOutcome::kMissExpired);
  EXPECT_NE(cache.peek(size_key()), nullptr);  // refresh may supersede it
}

TEST(EstimateCache, ChurnShrinksTtlAndQuietRecoversIt) {
  FreshnessPolicy policy;
  policy.base_ttl_us = 1'000'000;
  policy.min_ttl_us = 1000;
  policy.churn_sensitivity = 1.0;
  policy.churn_window_us = 1'000'000;
  EstimateCache cache(policy);
  cache.observe_version(0, 0);
  EXPECT_EQ(cache.current_ttl_us(), policy.base_ttl_us);
  // 10 bumps/sec sustained for several windows: TTL collapses.
  std::uint64_t now = 0;
  std::uint64_t version = 0;
  for (int i = 0; i < 50; ++i) {
    now += 100'000;  // 0.1 s
    version += 1;    // 10 bumps per second
    cache.observe_version(version, now);
  }
  EXPECT_GT(cache.churn_per_sec(), 5.0);
  const std::uint64_t churning_ttl = cache.current_ttl_us();
  EXPECT_LT(churning_ttl, policy.base_ttl_us / 5);
  EXPECT_GE(churning_ttl, policy.min_ttl_us);
  // Quiet period: the EWMA decays and the TTL recovers towards base.
  for (int i = 0; i < 50; ++i) {
    now += 100'000;
    cache.observe_version(version, now);  // no bumps
  }
  EXPECT_LT(cache.churn_per_sec(), 0.5);
  EXPECT_GT(cache.current_ttl_us(), churning_ttl * 4);
}

TEST(EstimateCache, KeysSeparateKindAndMethod) {
  EstimateCache cache;
  cache.insert(CacheKey{QueryKind::kSize, EstimateMethod::kRandomTour},
               entry_at(1, 0));
  EXPECT_FALSE(cache
                   .find(CacheKey{QueryKind::kDegreeSum,
                                  EstimateMethod::kRandomTour},
                         0.2, 0.05, 1, 0)
                   .hit());
  EXPECT_FALSE(cache
                   .find(CacheKey{QueryKind::kSize,
                                  EstimateMethod::kSampleCollide},
                         0.2, 0.05, 1, 0)
                   .hit());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.items().size(), 1u);
}

}  // namespace
}  // namespace overcount

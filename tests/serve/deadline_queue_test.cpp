// DeadlineQueue contract: bounded non-blocking admission, EDF pop order
// with FIFO tie-break, pause gating and close/drain semantics.
#include "runtime/deadline_queue.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "serve/types.hpp"

namespace overcount {
namespace {

TEST(DeadlineQueue, PopsEarliestDeadlineFirst) {
  DeadlineQueue<int> q(8);
  ASSERT_TRUE(q.try_push(1, /*deadline_us=*/300, /*seq=*/0));
  ASSERT_TRUE(q.try_push(2, /*deadline_us=*/100, /*seq=*/1));
  ASSERT_TRUE(q.try_push(3, /*deadline_us=*/200, /*seq=*/2));
  EXPECT_EQ(q.pop_earliest(), std::optional<int>(2));
  EXPECT_EQ(q.pop_earliest(), std::optional<int>(3));
  EXPECT_EQ(q.pop_earliest(), std::optional<int>(1));
}

TEST(DeadlineQueue, EqualDeadlinesLeaveInAdmissionOrder) {
  DeadlineQueue<int> q(8);
  // The common case: everyone is best-effort (kNoDeadline) — FIFO.
  ASSERT_TRUE(q.try_push(10, kNoDeadline, 0));
  ASSERT_TRUE(q.try_push(11, kNoDeadline, 1));
  ASSERT_TRUE(q.try_push(12, kNoDeadline, 2));
  EXPECT_EQ(q.pop_earliest(), std::optional<int>(10));
  EXPECT_EQ(q.pop_earliest(), std::optional<int>(11));
  EXPECT_EQ(q.pop_earliest(), std::optional<int>(12));
}

TEST(DeadlineQueue, DeadlinedItemsOvertakeBestEffortBacklog) {
  DeadlineQueue<int> q(8);
  ASSERT_TRUE(q.try_push(1, kNoDeadline, 0));
  ASSERT_TRUE(q.try_push(2, kNoDeadline, 1));
  ASSERT_TRUE(q.try_push(99, /*deadline_us=*/50, 2));
  EXPECT_EQ(q.pop_earliest(), std::optional<int>(99));
  EXPECT_EQ(q.pop_earliest(), std::optional<int>(1));
}

TEST(DeadlineQueue, FullQueueRefusesInsteadOfBlocking) {
  DeadlineQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1, kNoDeadline, 0));
  EXPECT_TRUE(q.try_push(2, kNoDeadline, 1));
  EXPECT_FALSE(q.try_push(3, kNoDeadline, 2));  // load-shed, never queue
  EXPECT_EQ(q.size(), 2u);
  q.pop_earliest();
  EXPECT_TRUE(q.try_push(3, kNoDeadline, 3));  // space freed -> admitted
}

TEST(DeadlineQueue, PauseHoldsConsumersUntilResumed) {
  DeadlineQueue<int> q(4);
  q.set_paused(true);
  ASSERT_TRUE(q.try_push(7, kNoDeadline, 0));
  std::optional<int> got;
  std::thread consumer([&] { got = q.pop_earliest(); });
  // The consumer must be blocked: the queue has an item but is paused.
  // (No sleep-based assertion on the negative; resuming is the real check.)
  q.set_paused(false);
  consumer.join();
  EXPECT_EQ(got, std::optional<int>(7));
}

TEST(DeadlineQueue, CloseWakesPoppersAndDrainReturnsBacklog) {
  DeadlineQueue<int> q(4);
  ASSERT_TRUE(q.try_push(1, kNoDeadline, 0));
  ASSERT_TRUE(q.try_push(2, kNoDeadline, 1));
  std::optional<int> blocked;
  q.set_paused(true);
  std::thread consumer([&] { blocked = q.pop_earliest(); });
  q.close();
  consumer.join();
  EXPECT_EQ(blocked, std::nullopt);  // woken empty-handed, not with an item
  EXPECT_FALSE(q.try_push(3, kNoDeadline, 2));
  const std::vector<int> rest = q.drain();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0], 1);
  EXPECT_EQ(rest[1], 2);
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace overcount

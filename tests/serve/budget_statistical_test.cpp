// Statistical property of the budget planner: the m tours it prescribes
// for an (epsilon, delta) target actually deliver that error on the
// paper's graph families. Chebyshev over the Prop. 2 variance bound is
// conservative, so the observed violation rate of |estimate/n - 1| > eps
// across independent planned batches must sit inside delta with room to
// spare. Fixed seeds: deterministic regression checks, not flaky ones.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/parallel.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "serve/budget.hpp"

namespace overcount {
namespace {

void check_planned_budget_achieves_error(const Graph& g, double epsilon,
                                         double delta, std::uint64_t seed) {
  const auto n = static_cast<double>(g.num_nodes());
  const GraphProfile profile = profile_graph(g, 0, /*version=*/0);
  ASSERT_GT(profile.lambda2, 0.0);
  BudgetPlanner::Limits limits;
  limits.max_walks = std::size_t{1} << 17;
  BudgetPlanner planner(limits);
  const BudgetPlan plan = planner.plan_tours(profile, epsilon, delta);
  ASSERT_LE(plan.epsilon, epsilon + 1e-12)
      << "budget was clamped below the target; the check would be vacuous";

  ParallelRunner runner(4);
  const int reps = 40;
  int violations = 0;
  for (int r = 0; r < reps; ++r) {
    const TourBatch batch =
        run_tours_size(g, 0, plan.walks, seed + static_cast<std::uint64_t>(r),
                       runner);
    ASSERT_TRUE(batch.ok());
    const double rel = std::abs(batch.mean() / n - 1.0);
    if (rel > epsilon) ++violations;
  }
  // The guarantee is P(violation) <= delta per batch; allow the binomial
  // wiggle of 40 draws on top. In practice the loose Chebyshev budget
  // makes violations rare to nonexistent.
  EXPECT_LE(violations, static_cast<int>(std::ceil(delta * reps)) + 2)
      << "planned m=" << plan.walks << " achieved eps=" << plan.epsilon;
}

TEST(BudgetStatistical, PlannedToursAchieveTargetOnBalancedRandom) {
  Rng rng(401);
  const Graph g = largest_component(balanced_random_graph(200, rng));
  check_planned_budget_achieves_error(g, /*epsilon=*/0.3, /*delta=*/0.2,
                                      /*seed=*/402);
}

TEST(BudgetStatistical, PlannedToursAchieveTargetOnScaleFree) {
  Rng rng(403);
  const Graph g = barabasi_albert(200, 3, rng);
  check_planned_budget_achieves_error(g, /*epsilon=*/0.3, /*delta=*/0.2,
                                      /*seed=*/404);
}

TEST(BudgetStatistical, TighterEpsilonShrinksObservedSpread) {
  // Sanity on the scaling direction: the planner's budget for eps=0.15
  // yields an empirical relative error clearly below the one for eps=0.6.
  Rng rng(405);
  const Graph g = largest_component(balanced_random_graph(150, rng));
  const auto n = static_cast<double>(g.num_nodes());
  const GraphProfile profile = profile_graph(g, 0, 0);
  BudgetPlanner::Limits limits;
  limits.max_walks = std::size_t{1} << 17;
  BudgetPlanner planner(limits);
  ParallelRunner runner(4);
  auto mean_abs_error = [&](double epsilon, std::uint64_t seed) {
    const BudgetPlan plan = planner.plan_tours(profile, epsilon, 0.2);
    double total = 0.0;
    const int reps = 12;
    for (int r = 0; r < reps; ++r) {
      const TourBatch batch = run_tours_size(
          g, 0, plan.walks, seed + static_cast<std::uint64_t>(r), runner);
      total += std::abs(batch.mean() / n - 1.0);
    }
    return total / reps;
  };
  EXPECT_LT(mean_abs_error(0.15, 500), mean_abs_error(0.6, 600));
}

}  // namespace
}  // namespace overcount

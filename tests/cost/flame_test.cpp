// fold_collapsed_stacks contract: complete spans rebuild their nesting
// from (ts, dur) intervals, each span contributes its EXCLUSIVE time to its
// full stack path, a "cost_ctx" argument splices tenant/query attribution
// frames in, and the output is byte-stable regardless of record order —
// the same algorithm scripts/flamegraph.py implements, so the two must
// agree on every case pinned here.
#include "obs/cost/flame.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/cost/cost.hpp"
#include "obs/trace.hpp"

namespace overcount {
namespace {

/// Records a complete span with explicit timing (record() fills the tid).
void span(TraceRecorder& trace, const char* name, std::uint64_t ts_us,
          std::uint64_t dur_us, std::uint64_t cost_ctx = 0) {
  TraceEvent e;
  e.name = name;
  e.cat = "test";
  e.phase = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  if (cost_ctx != 0) {
    e.arg_name = "cost_ctx";
    e.arg = cost_ctx;
  }
  trace.record(e);
}

TEST(FlameFold, NestedSpansContributeExclusiveTime) {
  TraceRecorder trace(64);
  span(trace, "parent", 0, 100);
  span(trace, "childA", 10, 20);
  span(trace, "childB", 40, 10);
  // parent holds 100us but its children cover 30: self time is 70.
  EXPECT_EQ(fold_collapsed_stacks(trace),
            "parent 70\n"
            "parent;childA 20\n"
            "parent;childB 10\n");
}

TEST(FlameFold, SpanEndingWhereAnotherStartsIsASibling) {
  TraceRecorder trace(64);
  span(trace, "first", 0, 10);
  span(trace, "second", 10, 5);  // end(first) <= start(second): no nesting
  EXPECT_EQ(fold_collapsed_stacks(trace), "first 10\nsecond 5\n");
}

TEST(FlameFold, EqualStartNestsTheLongerSpanOutside) {
  TraceRecorder trace(64);
  // Recorded inner-first: the fold must still order by duration, because
  // at an equal start the longer span is the one that opened first.
  span(trace, "inner", 0, 40);
  span(trace, "outer", 0, 100);
  EXPECT_EQ(fold_collapsed_stacks(trace), "outer 60\nouter;inner 40\n");
}

TEST(FlameFold, FullyCoveredParentEmitsNoZeroLine) {
  TraceRecorder trace(64);
  span(trace, "parent", 0, 50);
  span(trace, "child", 0, 50);
  // parent's exclusive time is 0 — collapsed format forbids zero counts,
  // so only the leaf line appears.
  EXPECT_EQ(fold_collapsed_stacks(trace), "parent;child 50\n");
}

TEST(FlameFold, CostCtxSplicesTenantAndQueryFrames) {
  CostLedger ledger;
  QueryContext qc;
  qc.tenant = "acme corp";  // separator chars must be sanitised
  qc.query_id = 7;
  const std::uint32_t ctx = ledger.open(std::move(qc));

  TraceRecorder trace(64);
  span(trace, "cost.ctx", 0, 100, ctx);
  span(trace, "serve.walks", 5, 90);
  EXPECT_EQ(fold_collapsed_stacks(trace, &ledger),
            "tenant=acme_corp;query=7;cost.ctx 10\n"
            "tenant=acme_corp;query=7;cost.ctx;serve.walks 90\n");

  // Without a ledger (or for an id the ledger never opened) the raw id is
  // still an attribution frame — the profile stays splittable by context.
  EXPECT_EQ(fold_collapsed_stacks(trace, nullptr),
            "ctx=1;cost.ctx 10\nctx=1;cost.ctx;serve.walks 90\n");
}

TEST(FlameFold, InstantAndFlowEventsAreIgnored) {
  TraceRecorder trace(64);
  trace.record_instant("test", "marker");
  trace.record_flow("test", "walk", 's', 42);
  EXPECT_EQ(fold_collapsed_stacks(trace), "");
  span(trace, "work", 0, 5);
  EXPECT_EQ(fold_collapsed_stacks(trace), "work 5\n");
}

TEST(FlameFold, IdenticalStacksMergeAcrossRepeatsAndOutputIsStable) {
  TraceRecorder trace(256);
  span(trace, "batch", 0, 100);
  span(trace, "walk", 10, 20);
  span(trace, "walk", 50, 30);  // same path, disjoint interval
  const std::string once = fold_collapsed_stacks(trace);
  EXPECT_EQ(once, "batch 50\nbatch;walk 50\n");
  EXPECT_EQ(fold_collapsed_stacks(trace), once);  // byte-stable
}

TEST(FlameFold, WriteCollapsedFileRoundTrips) {
  TraceRecorder trace(64);
  span(trace, "batch", 0, 100);
  span(trace, "walk", 10, 20);
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "flame_test.folded";
  ASSERT_TRUE(write_collapsed_file(path.string(), trace));
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_EQ(os.str(), fold_collapsed_stacks(trace));
  EXPECT_FALSE(write_collapsed_file("/nonexistent/dir/x.folded", trace));
}

}  // namespace
}  // namespace overcount

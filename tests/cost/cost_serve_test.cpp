// Serve-layer cost attribution: every admitted query gets its own ledger
// context carrying (tenant, query, kind, method, SLO class); batch work,
// cache hits and misses are charged to the causing tenant; the ledger's
// step total reconciles exactly with the serve-side walk.steps counter;
// and /costs on MetricsHttpServer serves the ranked JSON view of it all.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "graph/generators.hpp"
#include "obs/cost/cost.hpp"
#include "obs/expose.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"
#include "serve/source.hpp"

namespace overcount {
namespace {

// The broker only opens ledger contexts when the hook layer is live
// (cost_active() is constexpr false under OVERCOUNT_COST=OFF), so the
// whole serve-attribution surface vanishes in that build.
#if OVERCOUNT_COST_ENABLED

struct TestClock {
  std::shared_ptr<std::atomic<std::uint64_t>> us =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  std::function<std::uint64_t()> fn() const {
    auto ptr = us;
    return [ptr] { return ptr->load(std::memory_order_relaxed); };
  }
  void advance(std::uint64_t delta) {
    us->fetch_add(delta, std::memory_order_relaxed);
  }
};

ServiceConfig fast_config(const TestClock& clock) {
  ServiceConfig config;
  config.threads = 2;
  config.queue_capacity = 8;
  config.lambda2_hint = 0.0;
  config.seed = 7;
  config.now_us = clock.fn();
  return config;
}

EstimateRequest tenant_request(std::string tenant, double epsilon = 0.3) {
  EstimateRequest req;
  req.kind = QueryKind::kSize;
  req.method = EstimateMethod::kRandomTour;
  req.epsilon = epsilon;
  req.delta = 0.2;
  req.tenant = std::move(tenant);
  return req;
}

/// The ledger must outlive the service (the broker charges on shutdown),
/// so every test builds this pair in order.
struct Harness {
  MetricsRegistry cost_registry;
  CostLedger ledger{&cost_registry};
  Graph g = complete(16);
  TestClock clock;
  EstimateService service;

  Harness() : service(static_graph_source(g), fast_config(clock)) {
    ledger.install();
  }
  ~Harness() { ledger.uninstall(); }
};

TEST(CostServe, TenantsLandOnSeparateLedgerRowsWithFullContext) {
  Harness h;
  // The second request is TIGHTER than the first's cached answer (the
  // cache serves looser requests from tighter entries), so each tenant
  // runs a real batch of its own.
  const EstimateResponse ra = h.service.query(tenant_request("acme", 0.30));
  const EstimateResponse rb = h.service.query(tenant_request("bee", 0.25));
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_FALSE(ra.cache_hit);
  ASSERT_FALSE(rb.cache_hit);

  ASSERT_EQ(h.ledger.contexts(), 3u);  // sink + one per admitted query
  const CostRecord acme = h.ledger.fold(1);
  const CostRecord bee = h.ledger.fold(2);
  EXPECT_EQ(acme.context.tenant, "acme");
  EXPECT_EQ(bee.context.tenant, "bee");
  EXPECT_EQ(acme.context.kind, "size");
  EXPECT_EQ(acme.context.method, "random_tour");
  EXPECT_EQ(acme.context.slo_class, "size.random_tour.besteffort");
  EXPECT_NE(acme.context.query_id, bee.context.query_id);

  for (const CostRecord* row : {&acme, &bee}) {
    EXPECT_GT(row->steps(), 0u);
    EXPECT_GT(row->get(CostField::kWalks), 0u);
    EXPECT_EQ(row->get(CostField::kBatches), 1u);
    EXPECT_EQ(row->get(CostField::kCacheMisses), 1u);
    EXPECT_EQ(row->get(CostField::kCacheHits), 0u);
  }

  // Ledger steps reconcile exactly with the ledger-independent anchor the
  // service bumps from each batch result.
  const MetricsSnapshot serve_snap = h.service.metrics().snapshot();
  EXPECT_EQ(h.ledger.totals().steps(),
            serve_snap.counter_or_zero("walk.steps"));
  EXPECT_EQ(serve_snap.counter_or_zero("serve.steps"),
            serve_snap.counter_or_zero("walk.steps"));
  // And with the mirror in the ledger's own registry.
  EXPECT_EQ(h.cost_registry.snapshot().counter_or_zero("cost.steps"),
            h.ledger.totals().steps());
  // Zero residue: every serve-path charge had a context.
  EXPECT_EQ(h.ledger.unattributed().steps(), 0u);
  EXPECT_EQ(h.ledger.unattributed().get(CostField::kBatches), 0u);
}

TEST(CostServe, CacheHitIsChargedToTheHittingTenant) {
  Harness h;
  ASSERT_TRUE(h.service.query(tenant_request("acme")).ok());
  h.clock.advance(1000);
  // Same cache key, different tenant: bee rides acme's cached batch (the
  // tenant never partitions the cache) but the HIT bills to bee.
  const EstimateResponse hit = h.service.query(tenant_request("bee"));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.cache_hit);

  const CostRecord acme = h.ledger.fold(1);
  const CostRecord bee = h.ledger.fold(2);
  EXPECT_EQ(bee.context.tenant, "bee");
  EXPECT_EQ(bee.get(CostField::kCacheHits), 1u);
  EXPECT_EQ(bee.steps(), 0u);  // the walks were acme's
  EXPECT_EQ(bee.get(CostField::kBatches), 0u);
  EXPECT_EQ(acme.get(CostField::kCacheMisses), 1u);
  EXPECT_GT(acme.steps(), 0u);
}

TEST(CostServe, AnonymousTenantAccountsUnderAnonymous) {
  Harness h;
  ASSERT_TRUE(h.service.query(tenant_request("")).ok());
  EXPECT_EQ(h.ledger.fold(1).context.tenant, "anonymous");
  EXPECT_GT(h.ledger.fold(1).steps(), 0u);
}

TEST(CostServe, CostsEndpointServesRankedLedgerJson) {
  Harness h;
  ASSERT_TRUE(h.service.query(tenant_request("acme", 0.30)).ok());
  ASSERT_TRUE(h.service.query(tenant_request("bee", 0.25)).ok());

  MetricsHttpServer server(h.cost_registry, 0);
  ASSERT_NE(server.port(), 0);

  // Without a ledger attached the route 404s instead of serving nonsense.
  int status = 0;
  http_get_body(server.port(), "/costs", &status);
  EXPECT_EQ(status, 404);

  server.set_cost_ledger(&h.ledger);
  const std::string body = http_get_body(server.port(), "/costs", &status);
  EXPECT_EQ(status, 200);
  const JsonValue doc = parse_json(body);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->as_number(), 1.0);
  EXPECT_EQ(doc.find("contexts")->as_number(), 3.0);
  const auto& tenants = doc.find("top_tenants")->find("by_steps")->as_array();
  ASSERT_EQ(tenants.size(), 2u);
  const std::string first = tenants[0].find("tenant")->as_string();
  EXPECT_TRUE(first == "acme" || first == "bee");
  EXPECT_DOUBLE_EQ(tenants[1].find("cum_share")->as_number(), 1.0);

  // ?k=1 truncates the rankings; junk parameters keep the default.
  const JsonValue k1 =
      parse_json(http_get_body(server.port(), "/costs?k=1", &status));
  EXPECT_EQ(k1.find("k")->as_number(), 1.0);
  EXPECT_EQ(k1.find("top_tenants")->find("by_steps")->as_array().size(), 1u);
  const JsonValue junk =
      parse_json(http_get_body(server.port(), "/costs?k=zero", &status));
  EXPECT_EQ(junk.find("k")->as_number(), 10.0);

  // The JSON endpoint is a snapshot: explicit charset, never cacheable.
  const std::string raw = http_get_response(server.port(), "/costs");
  EXPECT_NE(raw.find("Content-Type: application/json; charset=utf-8"),
            std::string::npos);
  EXPECT_NE(raw.find("Cache-Control: no-store"), std::string::npos);
}

#endif  // OVERCOUNT_COST_ENABLED

}  // namespace
}  // namespace overcount

// CostLedger acceptance contract:
//  (a) context 0 (the unattributed sink) exists from construction and
//      absorbs charges to unknown ids — charge() never drops on the floor;
//  (b) open() hands out dense ids, normalises the anonymous tenant, and a
//      full table degrades to the sink (counted, not crashed);
//  (c) charges fold exactly across thread shards — concurrent chargers
//      lose nothing;
//  (d) the registry mirror (cost.*) tracks the ledger totals;
//  (e) the thread-local hooks (CostScope / cost_charge / cost_charge_batch)
//      route to the installed ledger and restore on scope exit;
//  (f) write_costs_json emits the schema /costs and the flight bundle
//      serve: totals, context_table join table, rankings with monotone
//      cumulative shares.
#include "obs/cost/cost.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace overcount {
namespace {

QueryContext make_context(std::string tenant, std::uint64_t query_id) {
  QueryContext qc;
  qc.tenant = std::move(tenant);
  qc.query_id = query_id;
  qc.kind = "size";
  qc.method = "random_tour";
  qc.slo_class = "size.random_tour.besteffort";
  return qc;
}

TEST(CostLedger, SinkContextExistsFromConstruction) {
  CostLedger ledger;
  EXPECT_EQ(ledger.contexts(), 1u);
  EXPECT_EQ(ledger.dropped_contexts(), 0u);
  const auto sink = ledger.context(0);
  ASSERT_TRUE(sink.has_value());
  EXPECT_EQ(sink->tenant, "(unattributed)");
  for (std::size_t f = 0; f < kCostFieldCount; ++f)
    EXPECT_EQ(ledger.unattributed().v[f], 0u) << cost_field_name(
        static_cast<CostField>(f));
}

TEST(CostLedger, OpenAssignsDenseIdsAndNormalisesAnonymous) {
  CostLedger ledger;
  const std::uint32_t a = ledger.open(make_context("acme", 1));
  const std::uint32_t b = ledger.open(make_context("", 2));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(ledger.contexts(), 3u);
  EXPECT_EQ(ledger.context(a)->tenant, "acme");
  EXPECT_EQ(ledger.context(a)->query_id, 1u);
  EXPECT_EQ(ledger.context(a)->method, "random_tour");
  // The empty tenant is a legal request; it accounts as "anonymous".
  EXPECT_EQ(ledger.context(b)->tenant, "anonymous");
  // Ids never handed out resolve to nothing.
  EXPECT_FALSE(ledger.context(99).has_value());
}

TEST(CostLedger, ChargesToUnknownContextsLandOnTheSink) {
  CostLedger ledger;
  const std::uint32_t ctx = ledger.open(make_context("acme", 1));
  ledger.charge(ctx, CostField::kSteps, 10);
  ledger.charge(99, CostField::kSteps, 7);      // never opened
  ledger.charge(12345, CostField::kTokens, 3);  // never opened
  EXPECT_EQ(ledger.fold(ctx).steps(), 10u);
  EXPECT_EQ(ledger.unattributed().steps(), 7u);
  EXPECT_EQ(ledger.unattributed().get(CostField::kTokens), 3u);
  // Totals see everything exactly once.
  EXPECT_EQ(ledger.totals().steps(), 17u);
}

TEST(CostLedger, FullTableDegradesToTheSinkAndCounts) {
  CostLedger ledger;
  std::uint32_t last = 0;
  // Open until the fixed-capacity table refuses; the bound only guards
  // against the ledger never refusing.
  for (std::size_t i = 0; i < (1u << 20); ++i) {
    const std::uint32_t id = ledger.open(make_context("flood", i));
    if (id == 0) break;
    last = id;
  }
  EXPECT_GT(last, 0u);
  EXPECT_EQ(ledger.dropped_contexts(), 1u);
  EXPECT_EQ(ledger.contexts(), static_cast<std::size_t>(last) + 1);
  // The overflow query still accounts — on the sink.
  ledger.charge(0, CostField::kSteps, 5);
  EXPECT_EQ(ledger.unattributed().steps(), 5u);
}

TEST(CostLedger, ConcurrentChargesFoldExactly) {
  CostLedger ledger;
  const std::uint32_t ctx = ledger.open(make_context("acme", 1));
  constexpr int kThreads = 8;
  constexpr std::uint64_t kChargesPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kChargesPerThread; ++i) {
        ledger.charge(ctx, CostField::kSteps, 3);
        ledger.charge(ctx, CostField::kHandoffs, 1);
      }
    });
  for (auto& t : threads) t.join();
  // Exact, not approximate: the per-thread shards are summed in a
  // deterministic fold, so nothing is lost to contention.
  EXPECT_EQ(ledger.fold(ctx).steps(), 3 * kThreads * kChargesPerThread);
  EXPECT_EQ(ledger.fold(ctx).handoffs(), kThreads * kChargesPerThread);
}

TEST(CostLedger, RegistryMirrorTracksLedgerTotals) {
  MetricsRegistry registry;
  CostLedger ledger(&registry);
  const std::uint32_t a = ledger.open(make_context("acme", 1));
  const std::uint32_t b = ledger.open(make_context("bee", 2));
  ledger.charge(a, CostField::kSteps, 100);
  ledger.charge(b, CostField::kSteps, 50);
  ledger.charge(b, CostField::kCacheHits, 1);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or_zero("cost.steps"), 150u);
  EXPECT_EQ(snap.counter_or_zero("cost.cache_hits"), 1u);
  double contexts_gauge = -1.0;
  for (const auto& [name, value] : snap.gauges)
    if (name == "cost.contexts") contexts_gauge = value;
  EXPECT_EQ(contexts_gauge, 3.0);
  EXPECT_EQ(snap.counter_or_zero("cost.dropped_contexts"), 0u);
  // Mirror equals fold: the two views never drift.
  EXPECT_EQ(ledger.totals().steps(), 150u);
}

// Only the hook layer compiles away under OVERCOUNT_COST=OFF; everything
// above tests the ledger class directly and runs in either build.
#if OVERCOUNT_COST_ENABLED
TEST(CostHooks, InstalledLedgerReceivesScopedCharges) {
  CostLedger ledger;
  const std::uint32_t ctx = ledger.open(make_context("acme", 1));
  EXPECT_FALSE(cost_active());
  cost_charge(CostField::kSteps, 99);  // no ledger: a no-op, not a crash
  ledger.install();
  EXPECT_TRUE(cost_active());
  {
    CostScope scope(ctx);
    EXPECT_EQ(cost_current(), ctx);
    cost_charge(CostField::kSteps, 7);
    cost_charge_batch(/*steps=*/100, /*walks=*/4, /*cpu_seconds=*/0.5);
    {
      CostScope inner(0);  // nested scopes save and restore
      EXPECT_EQ(cost_current(), 0u);
      cost_charge(CostField::kSteps, 1);
    }
    EXPECT_EQ(cost_current(), ctx);
  }
  EXPECT_EQ(cost_current(), 0u);
  cost_charge(CostField::kWalks, 5);  // outside any scope: the sink
  ledger.uninstall();
  EXPECT_FALSE(cost_active());
  cost_charge(CostField::kSteps, 1000);  // uninstalled: dropped

  const CostRecord row = ledger.fold(ctx);
  EXPECT_EQ(row.steps(), 107u);
  EXPECT_EQ(row.get(CostField::kWalks), 4u);
  EXPECT_EQ(row.cpu_us(), 500'000u);
  EXPECT_EQ(ledger.unattributed().steps(), 1u);
  EXPECT_EQ(ledger.unattributed().get(CostField::kWalks), 5u);
}
#endif  // OVERCOUNT_COST_ENABLED

TEST(CostLedger, WriteCostsJsonEmitsRankingsWithMonotoneShares) {
  CostLedger ledger;
  const std::uint32_t a = ledger.open(make_context("acme", 1));
  const std::uint32_t b = ledger.open(make_context("bee", 2));
  const std::uint32_t c = ledger.open(make_context("acme", 3));
  ledger.charge(a, CostField::kSteps, 600);
  ledger.charge(b, CostField::kSteps, 300);
  ledger.charge(c, CostField::kSteps, 100);
  ledger.charge(b, CostField::kHandoffs, 9);

  std::ostringstream os;
  JsonWriter w(os);
  write_costs_json(w, ledger, /*k=*/10);
  const JsonValue doc = parse_json(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->as_number(), 1.0);
  EXPECT_EQ(doc.find("contexts")->as_number(), 4.0);
  EXPECT_EQ(doc.find("totals")->find("steps")->as_number(), 1000.0);
  EXPECT_EQ(doc.find("unattributed")->find("steps")->as_number(), 0.0);

  // The join table lists every context including the sink, in id order —
  // this is what scripts/flamegraph.py keys trace spans against.
  const auto& table = doc.find("context_table")->as_array();
  ASSERT_EQ(table.size(), 4u);
  EXPECT_EQ(table[0].find("tenant")->as_string(), "(unattributed)");
  EXPECT_EQ(table[1].find("ctx")->as_number(), 1.0);
  EXPECT_EQ(table[1].find("tenant")->as_string(), "acme");
  EXPECT_EQ(table[2].find("query_id")->as_number(), 2.0);
  EXPECT_EQ(table[3].find("slo_class")->as_string(),
            "size.random_tour.besteffort");

  // Tenant ranking folds acme's two queries together: 700 vs 300.
  const auto& tenants = doc.find("top_tenants")->find("by_steps")->as_array();
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0].find("tenant")->as_string(), "acme");
  EXPECT_EQ(tenants[0].find("steps")->as_number(), 700.0);
  EXPECT_DOUBLE_EQ(tenants[0].find("share")->as_number(), 0.7);
  EXPECT_DOUBLE_EQ(tenants[1].find("cum_share")->as_number(), 1.0);

  // Query ranking keeps queries separate, descending, zero spenders cut.
  const auto& queries = doc.find("top_queries")->find("by_steps")->as_array();
  ASSERT_EQ(queries.size(), 3u);
  EXPECT_EQ(queries[0].find("query_id")->as_number(), 1.0);
  EXPECT_EQ(queries[1].find("query_id")->as_number(), 2.0);
  EXPECT_EQ(queries[2].find("query_id")->as_number(), 3.0);
  double prev = 0.0;
  for (const JsonValue& q : queries) {
    EXPECT_GE(q.find("cum_share")->as_number(), prev);  // monotone
    prev = q.find("cum_share")->as_number();
  }
  // Only bee spent handoffs; the zero rows do not pad the ranking.
  const auto& by_handoffs =
      doc.find("top_queries")->find("by_handoffs")->as_array();
  ASSERT_EQ(by_handoffs.size(), 1u);
  EXPECT_EQ(by_handoffs[0].find("tenant")->as_string(), "bee");

  // k truncates.
  std::ostringstream os1;
  JsonWriter w1(os1);
  write_costs_json(w1, ledger, /*k=*/1);
  const JsonValue doc1 = parse_json(os1.str());
  EXPECT_EQ(doc1.find("top_queries")->find("by_steps")->as_array().size(), 1u);
}

}  // namespace
}  // namespace overcount

// The cost ledger keeps the two hard promises ISSUE.md pins:
//  (1) bit-identity — a sharded run with the ledger installed, scoped and
//      mirrored into a registry produces estimates IDENTICAL to a bare run
//      of the same (seed, m): accounting reads, never perturbs;
//  (2) zero residue — the ledger's per-context step totals reconcile
//      EXACTLY with the ledger-independent walk.steps counter, the batch's
//      own total_steps, and the shard token-conservation counters, with
//      nothing left on the unattributed sink.
#include <gtest/gtest.h>

#include <cstdint>

#include "graph/generators.hpp"
#include "obs/cost/cost.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "shard/engine.hpp"
#include "shard/partition.hpp"

namespace overcount {
namespace {

// Every test here exercises the charge sites inside the engine and the
// CostScope hook, all of which compile away under OVERCOUNT_COST=OFF —
// in that build there is nothing to reconcile.
#if OVERCOUNT_COST_ENABLED

constexpr std::uint64_t kSeed = 0xFEEDBEEF;

Graph test_graph() {
  Rng rng(99);
  return balanced_random_graph(400, rng);
}

TEST(CostIdentity, InstrumentedShardedRunIsBitIdentical) {
  const Graph g = test_graph();
  const std::size_t m = 48;
  const ShardPlan plan = make_shard_plan(g, 4);
  const ShardedGraph sharded(g, plan);

  // Reference: no ledger, no registry, no tracer.
  ParallelRunner bare_runner(4, 8);
  ShardedWalkEngine bare(sharded, bare_runner);
  const TourBatch reference =
      bare.run_tours(0, m, [](NodeId) { return 1.0; }, kSeed);

  // Instrumented: ledger installed and scoped, registry mirroring, tracer
  // recording the cost.ctx attribution spans.
  MetricsRegistry registry;
  CostLedger ledger(&registry);
  ledger.install();
  TraceRecorder trace;
  trace.install();
  QueryContext qc;
  qc.tenant = "acme";
  qc.query_id = 1;
  const std::uint32_t ctx = ledger.open(std::move(qc));

  ParallelRunner runner(4, 8);
  ShardedWalkEngine engine(sharded, runner, &registry);
  const TourBatch observed = [&] {
    CostScope scope(ctx);
    return engine.run_tours(0, m, [](NodeId) { return 1.0; }, kSeed);
  }();
  trace.uninstall();
  ledger.uninstall();

  ASSERT_EQ(observed.tours.size(), reference.tours.size());
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_EQ(observed.tours[i].value, reference.tours[i].value);  // bitwise
    EXPECT_EQ(observed.tours[i].steps, reference.tours[i].steps);
  }
  EXPECT_EQ(observed.sum, reference.sum);
  EXPECT_EQ(observed.total_steps, reference.total_steps);

  // And it did account the run it left untouched.
  EXPECT_GT(ledger.fold(ctx).steps(), 0u);
}

TEST(CostIdentity, LedgerReconcilesExactlyWithEngineCounters) {
  const Graph g = test_graph();
  const std::size_t m = 48;
  const ShardPlan plan = make_shard_plan(g, 4);
  const ShardedGraph sharded(g, plan);

  MetricsRegistry registry;
  CostLedger ledger(&registry);
  ledger.install();
  QueryContext qc;
  qc.tenant = "acme";
  qc.query_id = 1;
  const std::uint32_t ctx = ledger.open(std::move(qc));

  ParallelRunner runner(4, 8);
  ShardedWalkEngine engine(sharded, runner, &registry);
  const TourBatch batch = [&] {
    CostScope scope(ctx);
    return engine.run_tours(0, m, [](NodeId) { return 1.0; }, kSeed);
  }();
  ledger.uninstall();

  const ShardRunStats& stats = engine.last_run_stats();
  const CostRecord row = ledger.fold(ctx);
  const MetricsSnapshot snap = registry.snapshot();

  // Steps reconcile three ways: the ledger row, the ledger-independent
  // walk.steps counter (bumped from the batch result, never through the
  // ledger), and the batch's own total — all the same number, exactly.
  EXPECT_EQ(row.steps(), batch.total_steps);
  EXPECT_EQ(snap.counter_or_zero("walk.steps"), batch.total_steps);
  EXPECT_EQ(stats.total_steps, batch.total_steps);
  // The mirror counters saw the same charges the fold sums.
  EXPECT_EQ(snap.counter_or_zero("cost.steps"), row.steps());

  // Shard-side work reconciles with token conservation: every handoff and
  // every drained token was billed to the context that rode it.
  EXPECT_GT(stats.handoffs, 0u);  // 4 shards, 400 nodes: walks migrate
  EXPECT_EQ(row.handoffs(), stats.handoffs);
  EXPECT_EQ(row.handoffs(), snap.counter_or_zero("shard.handoffs"));
  EXPECT_EQ(row.get(CostField::kTokens), stats.tokens_consumed);
  EXPECT_EQ(row.get(CostField::kTokens),
            snap.counter_or_zero("shard.tokens_consumed"));
  EXPECT_EQ(row.get(CostField::kWalks), m);
  EXPECT_EQ(row.get(CostField::kStitches), stats.stitches);
  EXPECT_EQ(row.get(CostField::kStitchSteps), stats.stitch_steps);

  // Zero residue: a fully scoped run leaves NOTHING on the sink.
  const CostRecord sink = ledger.unattributed();
  for (std::size_t f = 0; f < kCostFieldCount; ++f)
    EXPECT_EQ(sink.v[f], 0u) << cost_field_name(static_cast<CostField>(f));
}

TEST(CostIdentity, UnscopedRunBillsTheSinkCompletely) {
  const Graph g = test_graph();
  const ShardPlan plan = make_shard_plan(g, 4);
  const ShardedGraph sharded(g, plan);

  CostLedger ledger;
  ledger.install();
  ParallelRunner runner(4, 8);
  ShardedWalkEngine engine(sharded, runner);
  const TourBatch batch =
      engine.run_tours(0, 16, [](NodeId) { return 1.0; }, kSeed);
  ledger.uninstall();

  // No CostScope: everything lands on context 0, nothing is lost.
  EXPECT_EQ(ledger.unattributed().steps(), batch.total_steps);
  EXPECT_EQ(ledger.unattributed().get(CostField::kTokens),
            engine.last_run_stats().tokens_consumed);
  EXPECT_EQ(ledger.totals().steps(), batch.total_steps);
}

TEST(CostIdentity, ConcurrentQueriesDoNotCrossTalk) {
  const Graph g = test_graph();
  const ShardPlan plan = make_shard_plan(g, 4);
  const ShardedGraph sharded(g, plan);

  CostLedger ledger;
  ledger.install();
  QueryContext qa;
  qa.tenant = "acme";
  qa.query_id = 1;
  QueryContext qb;
  qb.tenant = "bee";
  qb.query_id = 2;
  const std::uint32_t a = ledger.open(std::move(qa));
  const std::uint32_t b = ledger.open(std::move(qb));

  ParallelRunner runner(4, 8);
  ShardedWalkEngine engine(sharded, runner);
  const TourBatch batch_a = [&] {
    CostScope scope(a);
    return engine.run_tours(0, 48, [](NodeId) { return 1.0; }, kSeed);
  }();
  const TourBatch batch_b = [&] {
    CostScope scope(b);
    return engine.run_tours(0, 16, [](NodeId) { return 1.0; }, kSeed + 1);
  }();
  ledger.uninstall();

  // Each context carries exactly its own batch — the ridden token ids keep
  // shard work attributed even though both batches crossed every shard.
  EXPECT_EQ(ledger.fold(a).steps(), batch_a.total_steps);
  EXPECT_EQ(ledger.fold(b).steps(), batch_b.total_steps);
  EXPECT_EQ(ledger.fold(a).get(CostField::kWalks), 48u);
  EXPECT_EQ(ledger.fold(b).get(CostField::kWalks), 16u);
  EXPECT_EQ(ledger.unattributed().steps(), 0u);
  EXPECT_EQ(ledger.totals().steps(),
            batch_a.total_steps + batch_b.total_steps);
}

#endif  // OVERCOUNT_COST_ENABLED

}  // namespace
}  // namespace overcount

#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace overcount {
namespace {

constexpr std::uint64_t kMax = ~0ULL;

TEST(Log2Histogram, BucketBoundaries) {
  // bucket_index is bit_width: 0 -> bucket 0, 1 -> 1, [2,3] -> 2,
  // [4,7] -> 3, ... [2^63, 2^64-1] -> 64. No value can overflow the array.
  EXPECT_EQ(Log2Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Log2Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Log2Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Log2Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Log2Histogram::bucket_index((1ULL << 63) - 1), 63u);
  EXPECT_EQ(Log2Histogram::bucket_index(1ULL << 63), 64u);
  EXPECT_EQ(Log2Histogram::bucket_index(kMax), 64u);
  static_assert(Log2Histogram::kBuckets == 65);

  // Lower/upper bounds agree with the index mapping at the edges.
  EXPECT_EQ(Log2Histogram::bucket_lower(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_lower(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_lower(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Log2Histogram::bucket_lower(64), 1ULL << 63);
  EXPECT_EQ(Log2Histogram::bucket_upper(64), kMax);
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(Log2Histogram::bucket_index(Log2Histogram::bucket_lower(i)), i);
    EXPECT_EQ(Log2Histogram::bucket_index(Log2Histogram::bucket_upper(i)), i);
  }
}

TEST(Log2Histogram, RecordsExtremesWithoutOverflow) {
  Log2Histogram h;
  h.record(0);
  h.record(1);
  h.record(kMax);
  h.record(1ULL << 63);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, kMax);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[64], 2u);
}

TEST(Log2Histogram, EmptyHistogramYieldsNan) {
  const Log2Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(std::isnan(h.mean()));
  EXPECT_TRUE(std::isnan(h.percentile(0.5)));
}

TEST(Log2Histogram, MeanAndPercentilesOnKnownData) {
  Log2Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Percentiles are interpolated within a power-of-two bucket, so they are
  // approximate — but must stay inside [min, max] and be monotone.
  const double p50 = h.percentile(0.50);
  const double p90 = h.percentile(0.90);
  const double p99 = h.percentile(0.99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 100.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_NEAR(p50, 50.0, 16.0);  // within the [33,64] bucket's span
  EXPECT_NEAR(p99, 99.0, 20.0);
  // Degenerate single-value histogram: all percentiles are that value.
  Log2Histogram one;
  one.record(7);
  EXPECT_DOUBLE_EQ(one.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(one.percentile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(one.percentile(1.0), 7.0);
}

TEST(Log2Histogram, MergeMatchesDirectRecording) {
  Log2Histogram a;
  Log2Histogram b;
  Log2Histogram direct;
  for (std::uint64_t v : {3ULL, 9ULL, 200ULL}) {
    a.record(v);
    direct.record(v);
  }
  for (std::uint64_t v : {0ULL, 64ULL, 1000000ULL}) {
    b.record(v);
    direct.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count, direct.count);
  EXPECT_EQ(a.sum, direct.sum);
  EXPECT_EQ(a.min, direct.min);
  EXPECT_EQ(a.max, direct.max);
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i)
    EXPECT_EQ(a.buckets[i], direct.buckets[i]);

  // Merging an empty histogram is a no-op in both directions.
  Log2Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count, direct.count);
  EXPECT_EQ(a.min, direct.min);
  Log2Histogram into;
  into.merge(direct);
  EXPECT_EQ(into.count, direct.count);
  EXPECT_EQ(into.max, direct.max);
}

}  // namespace
}  // namespace overcount

#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/contracts.hpp"

namespace overcount {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world_123"), "hello world_123");
  EXPECT_EQ(json_escape(""), "");
  // UTF-8 multibyte sequences are not escaped.
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  // Control characters without a short form use \u00XX.
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonWriter, WritesNestedDocument) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.kv("name", "bench");
  w.kv("count", std::uint64_t{42});
  w.key("points");
  w.begin_array();
  w.value(1.5);
  w.value(-2);
  w.end_array();
  w.kv("ok", true);
  w.key("missing");
  w.null();
  w.end_object();

  const auto doc = parse_json(out.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("name")->as_string(), "bench");
  EXPECT_EQ(doc.find("count")->as_number(), 42.0);
  const auto& points = doc.find("points")->as_array();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].as_number(), 1.5);
  EXPECT_EQ(points[1].as_number(), -2.0);
  EXPECT_TRUE(doc.find("ok")->as_bool());
  EXPECT_TRUE(doc.find("missing")->is_null());
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(JsonWriter, RoundTripsAwkwardStringsAndDoubles) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.kv("tricky", "line\nbreak \"quoted\" back\\slash \t tab");
  w.kv("tiny", 1e-300);
  w.kv("huge", 1.7976931348623157e308);
  w.kv("third", 1.0 / 3.0);
  w.end_object();

  const auto doc = parse_json(out.str());
  EXPECT_EQ(doc.find("tricky")->as_string(),
            "line\nbreak \"quoted\" back\\slash \t tab");
  // to_chars shortest form round-trips doubles exactly.
  EXPECT_EQ(doc.find("tiny")->as_number(), 1e-300);
  EXPECT_EQ(doc.find("huge")->as_number(), 1.7976931348623157e308);
  EXPECT_EQ(doc.find("third")->as_number(), 1.0 / 3.0);
}

TEST(JsonWriter, NanAndInfinityBecomeNull) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.end_array();
  const auto doc = parse_json(out.str());
  for (const auto& v : doc.as_array()) EXPECT_TRUE(v.is_null());
}

TEST(JsonWriter, MisuseTripsContracts) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  // A bare value inside an object (no key pending) is a contract violation.
  EXPECT_THROW(w.value(1.0), precondition_error);
}

TEST(JsonParser, ParsesEscapesAndUnicode) {
  const auto doc = parse_json(R"({"s": "a\u0041\n\t\\\" \u00e9"})");
  EXPECT_EQ(doc.find("s")->as_string(), "aA\n\t\\\" \xc3\xa9");
  // Surrogate pair: U+1F600.
  const auto emoji = parse_json(R"(["\ud83d\ude00"])");
  EXPECT_EQ(emoji.as_array()[0].as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse_json("tru"), std::runtime_error);
  EXPECT_THROW(parse_json("[1] trailing"), std::runtime_error);
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse_json("[\"\\ud83d\"]"), std::runtime_error);  // lone hi
}

}  // namespace
}  // namespace overcount

// Regression pins for Log2Histogram::percentile: the rank-interpolated
// read-out at exact bucket boundaries, and the degenerate empty /
// single-bucket cases where the [min, max] clamp must collapse every
// quantile to the one recorded value.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "obs/histogram.hpp"

namespace overcount {
namespace {

TEST(Log2HistogramPercentile, EmptyHistogramIsNanAtEveryQuantile) {
  const Log2Histogram h;
  EXPECT_TRUE(std::isnan(h.percentile(0.0)));
  EXPECT_TRUE(std::isnan(h.percentile(0.5)));
  EXPECT_TRUE(std::isnan(h.percentile(0.99)));
  EXPECT_TRUE(std::isnan(h.percentile(1.0)));
}

TEST(Log2HistogramPercentile, SingleValueCollapsesAllQuantiles) {
  // One observation: whatever the in-bucket interpolation says, the clamp
  // to [min, max] = [5, 5] must return exactly 5 for every q.
  Log2Histogram h;
  h.record(5);
  EXPECT_EQ(h.percentile(0.0), 5.0);
  EXPECT_EQ(h.percentile(0.5), 5.0);
  EXPECT_EQ(h.percentile(0.99), 5.0);
  EXPECT_EQ(h.percentile(1.0), 5.0);
  EXPECT_EQ(h.percentile(0.5), h.percentile(0.99));  // p50 == p99
}

TEST(Log2HistogramPercentile, SingleBucketWithSpreadClampsToObservedRange) {
  // Both values land in bucket [512, 1023]; interpolation alone would
  // report 767.5 for p50, but nothing below 1000 was ever observed.
  Log2Histogram h;
  h.record(1000);
  h.record(1023);
  EXPECT_EQ(h.percentile(0.50), 1000.0);  // clamped up to min
  EXPECT_EQ(h.percentile(0.99), 1023.0);
}

TEST(Log2HistogramPercentile, RepeatedValueKeepsP50EqualToP99) {
  Log2Histogram h;
  for (int i = 0; i < 3; ++i) h.record(6);
  EXPECT_EQ(h.percentile(0.5), 6.0);
  EXPECT_EQ(h.percentile(0.99), 6.0);
}

TEST(Log2HistogramPercentile, BucketUpperBoundariesAreRecoveredExactly) {
  // One observation at each bucket UPPER boundary: the rank interpolation
  // reaches frac = 1 inside each bucket, i.e. exactly the boundary value.
  Log2Histogram h;
  h.record(1);
  h.record(3);
  h.record(7);
  h.record(15);
  EXPECT_EQ(h.percentile(0.25), 1.0);
  EXPECT_EQ(h.percentile(0.50), 3.0);
  EXPECT_EQ(h.percentile(0.75), 7.0);
  EXPECT_EQ(h.percentile(1.00), 15.0);
}

TEST(Log2HistogramPercentile, InterpolatesWithinAPartiallyFilledBucket) {
  // Two observations in bucket [4, 7]: p50 targets rank 1 of 2, so the
  // interpolated read is lo + 0.5 * (hi - lo) = 5.5 (inside [min, max]).
  Log2Histogram h;
  h.record(4);
  h.record(7);
  EXPECT_EQ(h.percentile(0.50), 5.5);
  EXPECT_EQ(h.percentile(0.99), 7.0);
}

TEST(Log2HistogramPercentile, ZeroBucketBoundary) {
  // 0 is its own bucket: p50 of {0, 1} reads the zero bucket exactly, and
  // the next rank crosses into bucket [1, 1].
  Log2Histogram h;
  h.record(0);
  h.record(1);
  EXPECT_EQ(h.percentile(0.50), 0.0);
  EXPECT_EQ(h.percentile(0.99), 1.0);
}

TEST(Log2HistogramPercentile, QuantilesAreMonotoneAndClampedToRange) {
  Log2Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  double prev = h.percentile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = h.percentile(q);
    EXPECT_GE(cur, prev);
    EXPECT_GE(cur, 1.0);
    EXPECT_LE(cur, 1000.0);
    prev = cur;
  }
  // Out-of-range q is clamped, not undefined.
  EXPECT_EQ(h.percentile(-0.5), h.percentile(0.0));
  EXPECT_EQ(h.percentile(1.5), h.percentile(1.0));
}

}  // namespace
}  // namespace overcount

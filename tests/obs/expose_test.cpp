// The exposition contract: render_prometheus emits valid text-format 0.0.4
// (sanitised names, *_total counters, cumulative le-buckets closed by +Inf)
// and MetricsHttpServer serves exactly that over loopback HTTP without
// perturbing the registry.
#include "obs/expose.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/cost/cost.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace overcount {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(PrometheusName, SanitisesToMetricAlphabet) {
  EXPECT_EQ(prometheus_name("walk.visits"), "walk_visits");
  EXPECT_EQ(prometheus_name("sc:trial-hops"), "sc:trial_hops");
  EXPECT_EQ(prometheus_name("already_fine_09"), "already_fine_09");
  // Leading digit and empty names get a protective underscore.
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(prometheus_name(""), "_");
}

TEST(RenderPrometheus, CountersGetTotalSuffixOnce) {
  MetricsRegistry registry;
  registry.counter("walk.visits").add(3);
  registry.counter("walk.steps_total").add(7);
  const std::string text = render_prometheus(registry.snapshot());
  EXPECT_TRUE(contains(text, "# TYPE walk_visits_total counter\n"));
  EXPECT_TRUE(contains(text, "walk_visits_total 3\n"));
  // A name already ending in _total is not doubled.
  EXPECT_TRUE(contains(text, "walk_steps_total 7\n"));
  EXPECT_FALSE(contains(text, "walk_steps_total_total"));
}

TEST(RenderPrometheus, GaugesRenderRoundTripDecimal) {
  MetricsRegistry registry;
  registry.gauge("walk.sojourn_time").set(1.5);
  const std::string text = render_prometheus(registry.snapshot());
  EXPECT_TRUE(contains(text, "# HELP walk_sojourn_time "));
  EXPECT_TRUE(contains(text, "# TYPE walk_sojourn_time gauge\n"));
  EXPECT_TRUE(contains(text, "walk_sojourn_time 1.5\n"));
}

TEST(RenderPrometheus, HistogramBucketsAreCumulativeAndClosedByInf) {
  MetricsRegistry registry;
  AtomicHistogram& h = registry.histogram("walk.tour_steps");
  h.record(1);   // bucket le="1"
  h.record(2);   // bucket le="3"
  h.record(3);   // bucket le="3"
  const std::string text = render_prometheus(registry.snapshot());
  EXPECT_TRUE(contains(text, "# TYPE walk_tour_steps histogram\n"));
  EXPECT_TRUE(contains(text, "walk_tour_steps_bucket{le=\"1\"} 1\n"));
  EXPECT_TRUE(contains(text, "walk_tour_steps_bucket{le=\"3\"} 3\n"));
  EXPECT_TRUE(contains(text, "walk_tour_steps_bucket{le=\"+Inf\"} 3\n"));
  EXPECT_TRUE(contains(text, "walk_tour_steps_sum 6\n"));
  EXPECT_TRUE(contains(text, "walk_tour_steps_count 3\n"));
}

TEST(RenderPrometheus, EmptyHistogramStillClosesWithInf) {
  MetricsRegistry registry;
  registry.histogram("quiet");
  const std::string text = render_prometheus(registry.snapshot());
  // A zero-observation histogram is still a full family: HELP + TYPE +
  // closed bucket series, so scrapers see it from the first scrape.
  EXPECT_TRUE(contains(text, "# HELP quiet "));
  EXPECT_TRUE(contains(text, "# TYPE quiet histogram\n"));
  EXPECT_TRUE(contains(text, "quiet_bucket{le=\"+Inf\"} 0\n"));
  EXPECT_TRUE(contains(text, "quiet_count 0\n"));
  // No finite bucket line precedes +Inf for an empty histogram.
  EXPECT_FALSE(contains(text, "quiet_bucket{le=\"0\"}"));
}

TEST(MetricsHttpServer, ServesMetricsSnapshotAndHealth) {
  MetricsRegistry registry;
  registry.counter("walk.visits").add(42);
  registry.gauge("walk.sojourn_time").set(2.25);
  registry.histogram("walk.tour_steps").record(5);

  MetricsHttpServer server(registry, 0);  // ephemeral port
  ASSERT_NE(server.port(), 0);

  EXPECT_EQ(http_get_body(server.port(), "/healthz"), "ok\n");

  const std::string metrics = http_get_body(server.port(), "/metrics");
  EXPECT_TRUE(contains(metrics, "walk_visits_total 42\n"));
  EXPECT_TRUE(contains(metrics, "walk_sojourn_time 2.25\n"));
  EXPECT_TRUE(contains(metrics, "walk_tour_steps_bucket{le=\"+Inf\"} 1\n"));

  const std::string snapshot = http_get_body(server.port(), "/snapshot.json");
  const JsonValue doc = parse_json(snapshot);
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("walk.visits"), nullptr);
  EXPECT_EQ(counters->find("walk.visits")->as_number(), 42.0);

  const std::string missing = http_get_body(server.port(), "/nope");
  EXPECT_TRUE(contains(missing, "routes:"));

  // The server is live: counter bumps appear on the next scrape.
  registry.counter("walk.visits").add(1);
  EXPECT_TRUE(contains(http_get_body(server.port(), "/metrics"),
                       "walk_visits_total 43\n"));

  EXPECT_GE(server.requests_served(), 5u);
  server.stop();
  server.stop();  // idempotent
  EXPECT_EQ(http_get_body(server.port(), "/healthz"), "");  // gone
}

TEST(MetricsHttpServer, ReadyzIsDistinctFromHealthz) {
  MetricsRegistry registry;
  MetricsHttpServer server(registry, 0);
  ASSERT_NE(server.port(), 0);

  // No readiness check installed: /readyz degrades to liveness.
  int status = 0;
  EXPECT_EQ(http_get_body(server.port(), "/readyz", &status), "ready\n");
  EXPECT_EQ(status, 200);

  // "Loaded but not warmed": 503 on /readyz while /healthz stays 200, so
  // an orchestrator keeps the process alive but routes no traffic yet.
  std::atomic<bool> warmed{false};
  server.set_ready_check([&] { return warmed.load(); });
  EXPECT_EQ(http_get_body(server.port(), "/readyz", &status), "warming\n");
  EXPECT_EQ(status, 503);
  EXPECT_EQ(http_get_body(server.port(), "/healthz", &status), "ok\n");
  EXPECT_EQ(status, 200);

  warmed.store(true);
  EXPECT_EQ(http_get_body(server.port(), "/readyz", &status), "ready\n");
  EXPECT_EQ(status, 200);
}

// Every route is a point-in-time snapshot: a caching proxy replaying one
// would freeze "live" dashboards, and a missing charset invites scrapers
// to guess. Audit the full header contract on every endpoint, including
// the error paths.
TEST(MetricsHttpServer, AllRoutesCarryNoStoreAndExplicitCharset) {
  MetricsRegistry registry;
  registry.counter("walk.visits").inc();
  CostLedger ledger;
  MetricsHttpServer server(registry, 0);
  ASSERT_NE(server.port(), 0);
  server.set_cost_ledger(&ledger);

  const struct {
    const char* path;
    const char* content_type;
  } kRoutes[] = {
      {"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
      {"/snapshot.json", "application/json; charset=utf-8"},
      {"/costs", "application/json; charset=utf-8"},
      {"/healthz", "text/plain; charset=utf-8"},
      {"/readyz", "text/plain; charset=utf-8"},
      {"/no-such-route", "text/plain; charset=utf-8"},  // 404 too
  };
  for (const auto& route : kRoutes) {
    const std::string response = http_get_response(server.port(), route.path);
    EXPECT_NE(response.find("Cache-Control: no-store\r\n"), std::string::npos)
        << route.path;
    EXPECT_NE(response.find(std::string("Content-Type: ") +
                            route.content_type + "\r\n"),
              std::string::npos)
        << route.path;
    EXPECT_NE(response.find("Content-Length: "), std::string::npos)
        << route.path;
  }
}

// The unwarmed -> warmed flip under concurrent scrapes: every client must
// see a WHOLE response — a correct status line paired with its exact body,
// never a torn or partial one — while the readiness answer changes beneath
// them (and while set_ready_check swaps the callback mid-hammer).
TEST(MetricsHttpServer, ReadyzServesWholeResponsesThroughWarmupTransition) {
  MetricsRegistry registry;
  MetricsHttpServer server(registry, 0);
  ASSERT_NE(server.port(), 0);
  std::atomic<bool> warmed{false};
  server.set_ready_check([&] { return warmed.load(); });

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 30;
  std::atomic<int> torn{0};
  std::atomic<int> saw_warming{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        int status = 0;
        const std::string body =
            http_get_body(server.port(), "/readyz", &status);
        const bool whole = (status == 200 && body == "ready\n") ||
                           (status == 503 && body == "warming\n");
        if (!whole) torn.fetch_add(1);
        if (status == 503) saw_warming.fetch_add(1);
      }
    });
  // Flip readiness mid-hammer, and re-install the check a few times so the
  // callback swap itself races the serving thread.
  for (int i = 0; i < 5; ++i) {
    server.set_ready_check([&] { return warmed.load(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  warmed.store(true);
  for (auto& t : clients) t.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(saw_warming.load(), 0);  // the hammer really saw the warm-up
  // Settled state: ready, always.
  int status = 0;
  EXPECT_EQ(http_get_body(server.port(), "/readyz", &status), "ready\n");
  EXPECT_EQ(status, 200);
}

TEST(MetricsHttpServer, HttpGetBodyFailsCleanlyAgainstClosedPort) {
  MetricsRegistry registry;
  std::uint16_t freed_port = 0;
  {
    MetricsHttpServer server(registry, 0);
    freed_port = server.port();
  }
  EXPECT_EQ(http_get_body(freed_port, "/metrics"), "");
}

}  // namespace
}  // namespace overcount

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace overcount {
namespace {

TEST(MetricsRegistry, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("walk.visits");
  Counter& b = registry.counter("walk.visits");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  Gauge& g1 = registry.gauge("g");
  Gauge& g2 = registry.gauge("g");
  EXPECT_EQ(&g1, &g2);
  AtomicHistogram& h1 = registry.histogram("h");
  AtomicHistogram& h2 = registry.histogram("h");
  EXPECT_EQ(&h1, &h2);

  // Counters, gauges and histograms live in separate namespaces.
  registry.gauge("walk.visits").set(1.5);
  EXPECT_EQ(registry.counter("walk.visits").value(), 3u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("b").add(2);
  registry.counter("a").add(1);
  registry.gauge("z").set(4.5);
  registry.histogram("h").record(10);

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a");
  EXPECT_EQ(snap.counters[1].first, "b");
  EXPECT_EQ(snap.counter_or_zero("b"), 2u);
  EXPECT_EQ(snap.counter_or_zero("nope"), 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 4.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
}

// Runs under the TSan CI job (ctest -R '^(runtime|obs)\.'): concurrent
// increments on one counter must be race-free and lose nothing.
TEST(MetricsConcurrency, CountersSumAllIncrements) {
  MetricsRegistry registry;
  Counter& c = registry.counter("hits");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(MetricsConcurrency, HistogramAndGaugeUnderContention) {
  MetricsRegistry registry;
  AtomicHistogram& h = registry.histogram("values");
  Gauge& g = registry.gauge("acc");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h, &g, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) * kPerThread + i);
        g.add(1.0);
      }
    });
  for (auto& w : workers) w.join();

  const Log2Histogram snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, kThreads * kPerThread - 1);
  std::uint64_t bucket_total = 0;
  for (const auto b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kPerThread));
}

// Concurrent registration of the same and different names while a reader
// snapshots — exercises the registry mutex under TSan.
TEST(MetricsConcurrency, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&registry, t] {
      for (int i = 0; i < 200; ++i) {
        registry.counter("shared").inc();
        registry.counter("own." + std::to_string(t)).inc();
        if (i % 50 == 0) (void)registry.snapshot();
      }
    });
  for (auto& w : workers) w.join();
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or_zero("shared"), 8u * 200u);
  EXPECT_EQ(snap.counters.size(), 1u + kThreads);
}

}  // namespace
}  // namespace overcount

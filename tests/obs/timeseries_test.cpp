// The convergence-monitoring determinism contract: a monitored batch run
// (core/convergence.hpp) returns results BIT-IDENTICAL to the plain batch
// of the same (seed, m) at any thread count and recording interval, and the
// recorded trajectory itself is reproducible and exports as versioned JSON.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/convergence.hpp"
#include "core/parallel.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"

namespace overcount {
namespace {

Graph test_graph() {
  Rng rng(77);
  return largest_component(balanced_random_graph(400, rng));
}

TEST(TimeSeriesRecorder, RecordsPointsWithMetadata) {
  TimeSeriesRecorder rec("random_tour", 400.0);
  EXPECT_TRUE(rec.empty());
  EXPECT_TRUE(rec.has_truth());
  rec.record(10, 1000, 390.0, 0.5);
  rec.record(20, 2100, 405.0, 0.3);
  ASSERT_EQ(rec.points().size(), 2u);
  EXPECT_EQ(rec.kind(), "random_tour");
  EXPECT_EQ(rec.points()[0].walks, 10u);
  EXPECT_EQ(rec.points()[1].steps, 2100u);
  EXPECT_GE(rec.points()[1].wall_seconds, rec.points()[0].wall_seconds);

  TimeSeriesRecorder no_truth("sample_collide");
  EXPECT_FALSE(no_truth.has_truth());
}

TEST(TimeSeriesRecorder, SettledAtFindsLastEntryIntoTheBand) {
  TimeSeriesRecorder rec("rt", 100.0);
  rec.record(1, 0, 150.0, 0.0);  // outside 5%
  rec.record(2, 0, 104.0, 0.0);  // inside
  rec.record(3, 0, 120.0, 0.0);  // leaves again
  rec.record(4, 0, 101.0, 0.0);  // inside for good
  rec.record(5, 0, 103.0, 0.0);
  EXPECT_EQ(rec.settled_at(0.05), 3u);
  EXPECT_EQ(rec.settled_at(0.5), 0u);
  EXPECT_EQ(rec.settled_at(0.001), rec.points().size());  // never settles

  TimeSeriesRecorder no_truth("rt");
  no_truth.record(1, 0, 100.0, 0.0);
  EXPECT_EQ(no_truth.settled_at(0.05), no_truth.points().size());
}

TEST(TimeSeriesRecorder, JsonExportRoundTrips) {
  TimeSeriesRecorder rec("random_tour", 400.0);
  rec.record(10, 1234, 395.5, 0.25);
  const std::string path = "/tmp/overcount_timeseries_test.json";
  ASSERT_TRUE(write_timeseries_file(path, rec));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = parse_json(buffer.str());
  EXPECT_EQ(doc.find("schema")->as_number(), 1.0);
  EXPECT_EQ(doc.find("kind")->as_string(), "random_tour");
  EXPECT_EQ(doc.find("truth")->as_number(), 400.0);
  const JsonValue* points = doc.find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->as_array().size(), 1u);
  const JsonValue& p = points->as_array()[0];
  EXPECT_EQ(p.find("walks")->as_number(), 10.0);
  EXPECT_EQ(p.find("steps")->as_number(), 1234.0);
  EXPECT_EQ(p.find("estimate")->as_number(), 395.5);
  EXPECT_EQ(p.find("half_width")->as_number(), 0.25);
  std::remove(path.c_str());

  // Unknown truth serialises as null, not NaN (which JSON cannot carry).
  TimeSeriesRecorder no_truth("sc");
  no_truth.record(1, 1, 1.0, 0.1);
  std::ostringstream os;
  JsonWriter w(os);
  write_json(w, no_truth);
  const JsonValue doc2 = parse_json(os.str());
  EXPECT_TRUE(doc2.find("truth")->is_null());
}

TEST(ConvergenceRun, MonitoredToursBitIdenticalToPlainBatch) {
  const Graph g = test_graph();
  constexpr std::size_t kTours = 257;  // deliberately not interval-aligned
  constexpr std::uint64_t kSeed = 21;
  ParallelRunner base_runner(4);
  const auto plain = run_tours_size(g, 0, kTours, kSeed, base_runner);

  for (const unsigned threads : {1u, 8u}) {
    for (const std::size_t interval : {std::size_t{0}, std::size_t{7}}) {
      ParallelRunner runner(threads);
      TimeSeriesRecorder rec;
      ConvergenceOptions opts;
      opts.interval = interval;
      const auto monitored = run_tours_size_converging(g, 0, kTours, kSeed,
                                                       runner, rec, opts);
      EXPECT_EQ(monitored.sum, plain.sum);  // bitwise, not approximate
      EXPECT_EQ(monitored.total_steps, plain.total_steps);
      EXPECT_EQ(monitored.completed, plain.completed);
      EXPECT_EQ(monitored.truncated, plain.truncated);
      ASSERT_EQ(monitored.tours.size(), plain.tours.size());
      for (std::size_t i = 0; i < kTours; ++i) {
        EXPECT_EQ(monitored.tours[i].value, plain.tours[i].value);
        EXPECT_EQ(monitored.tours[i].steps, plain.tours[i].steps);
        EXPECT_EQ(monitored.tours[i].completed, plain.tours[i].completed);
      }
      // The final snapshot IS the batch estimate (same prefix reduction).
      ASSERT_FALSE(rec.empty());
      EXPECT_EQ(rec.points().back().walks, kTours);
      EXPECT_EQ(rec.points().back().steps, plain.total_steps);
      EXPECT_EQ(rec.points().back().estimate, plain.mean());
    }
  }
}

TEST(ConvergenceRun, TrajectoryIsIdenticalAcrossThreadCounts) {
  const Graph g = test_graph();
  ConvergenceOptions opts;
  opts.interval = 16;
  ParallelRunner one(1);
  ParallelRunner many(8);
  TimeSeriesRecorder rec_one;
  TimeSeriesRecorder rec_many;
  run_tours_size_converging(g, 0, 128, 5, one, rec_one, opts);
  run_tours_size_converging(g, 0, 128, 5, many, rec_many, opts);
  ASSERT_EQ(rec_one.points().size(), rec_many.points().size());
  for (std::size_t i = 0; i < rec_one.points().size(); ++i) {
    EXPECT_EQ(rec_one.points()[i].walks, rec_many.points()[i].walks);
    EXPECT_EQ(rec_one.points()[i].steps, rec_many.points()[i].steps);
    EXPECT_EQ(rec_one.points()[i].estimate, rec_many.points()[i].estimate);
  }
}

TEST(ConvergenceRun, MonitoredScTrialsBitIdenticalToPlainBatch) {
  const Graph g = test_graph();
  constexpr std::size_t kTrials = 33;
  constexpr std::size_t kEll = 8;
  constexpr std::uint64_t kSeed = 33;
  ParallelRunner base_runner(4);
  const auto plain =
      run_sc_trials(g, 0, kTrials, 5.0, kEll, kSeed, base_runner);

  for (const unsigned threads : {1u, 8u}) {
    ParallelRunner runner(threads);
    TimeSeriesRecorder rec;
    ConvergenceOptions opts;
    opts.interval = 5;
    const auto monitored = run_sc_converging(g, 0, kTrials, 5.0, kEll, kSeed,
                                             runner, rec, opts);
    EXPECT_EQ(monitored.sum_simple, plain.sum_simple);
    EXPECT_EQ(monitored.sum_ml, plain.sum_ml);
    EXPECT_EQ(monitored.total_hops, plain.total_hops);
    ASSERT_EQ(monitored.trials.size(), plain.trials.size());
    for (std::size_t i = 0; i < kTrials; ++i) {
      EXPECT_EQ(monitored.trials[i].simple, plain.trials[i].simple);
      EXPECT_EQ(monitored.trials[i].ml, plain.trials[i].ml);
      EXPECT_EQ(monitored.trials[i].hops, plain.trials[i].hops);
    }
    ASSERT_FALSE(rec.empty());
    EXPECT_EQ(rec.points().back().walks, kTrials);
    EXPECT_EQ(rec.points().back().estimate, plain.mean_simple());
  }
}

TEST(ConvergenceRun, RecordsTheoryHalfWidthsWhenInputsKnown) {
  const Graph g = test_graph();
  ParallelRunner runner(2);
  ConvergenceOptions opts;
  opts.interval = 32;
  opts.lambda2 = 0.2;
  opts.avg_degree =
      2.0 * static_cast<double>(g.num_edges()) /
      static_cast<double>(g.num_nodes());
  opts.truth = static_cast<double>(g.num_nodes());
  TimeSeriesRecorder rec;
  run_tours_size_converging(g, 0, 128, 9, runner, rec, opts);
  ASSERT_GE(rec.points().size(), 2u);
  EXPECT_EQ(rec.kind(), "random_tour");
  EXPECT_TRUE(rec.has_truth());
  std::uint64_t prev_walks = 0;
  for (const auto& p : rec.points()) {
    EXPECT_GT(p.walks, prev_walks);  // strictly increasing snapshots
    prev_walks = p.walks;
    EXPECT_TRUE(std::isfinite(p.half_width));
    // eps(m) = sqrt(2 d_bar / (lambda2 m delta)), checked literally.
    const double expected =
        std::sqrt(2.0 * opts.avg_degree /
                  (opts.lambda2 * static_cast<double>(p.walks) * opts.delta));
    EXPECT_DOUBLE_EQ(p.half_width, expected);
  }
  // Half-widths shrink as walks accumulate.
  EXPECT_LT(rec.points().back().half_width, rec.points().front().half_width);

  // Without theory inputs the half-width is NaN but the trajectory stands.
  TimeSeriesRecorder bare_rec;
  run_tours_size_converging(g, 0, 64, 9, runner, bare_rec);
  ASSERT_FALSE(bare_rec.empty());
  EXPECT_TRUE(std::isnan(bare_rec.points().front().half_width));
  EXPECT_FALSE(bare_rec.has_truth());

  // S&C half-width is 1.96/sqrt(ell k).
  TimeSeriesRecorder sc_rec;
  ConvergenceOptions sc_opts;
  sc_opts.interval = 4;
  run_sc_converging(g, 0, 12, 5.0, 8, 3, runner, sc_rec, sc_opts);
  ASSERT_FALSE(sc_rec.empty());
  EXPECT_EQ(sc_rec.kind(), "sample_collide");
  const auto& last = sc_rec.points().back();
  EXPECT_DOUBLE_EQ(last.half_width, 1.96 / std::sqrt(8.0 * 12.0));
}

}  // namespace
}  // namespace overcount

// The tracing contract: installing a TraceRecorder changes NOTHING about
// the numbers any estimator produces (no instrumentation site touches an
// Rng), recording is bounded (per-thread rings overwrite their oldest
// events, never block), and the exported file is valid Chrome trace_event
// JSON with the span structure the instrumentation promises.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/parallel.hpp"
#include "core/random_tour.hpp"
#include "core/sample_collide.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "walk/kernel.hpp"

namespace overcount {
namespace {

Graph test_graph() {
  Rng rng(77);
  return largest_component(balanced_random_graph(400, rng));
}

// Restores "no recorder installed" on scope exit even when a test fails,
// so a broken test cannot leave a dangling recorder for the next one.
struct Installed {
  explicit Installed(TraceRecorder& r) : rec(r) { rec.install(); }
  ~Installed() { rec.uninstall(); }
  TraceRecorder& rec;
};

// Only referenced by the OVERCOUNT_TRACE_ENABLED test block below.
[[maybe_unused]] std::size_t count_events(
    const std::vector<TraceEvent>& events, std::string_view name) {
  std::size_t n = 0;
  for (const auto& e : events)
    if (e.name != nullptr && name == e.name) ++n;
  return n;
}

TEST(TraceRecorder, InstallUninstallSwitchesActive) {
  ASSERT_EQ(TraceRecorder::active(), nullptr);
  TraceRecorder rec;
  rec.install();
  EXPECT_EQ(TraceRecorder::active(), &rec);
  rec.uninstall();
  EXPECT_EQ(TraceRecorder::active(), nullptr);
  // uninstall() of a recorder that is not installed must not clobber the
  // one that is.
  TraceRecorder other;
  other.install();
  rec.uninstall();
  EXPECT_EQ(TraceRecorder::active(), &other);
  other.uninstall();
}

TEST(TraceRecorder, CollectsCompleteAndInstantEvents) {
  TraceRecorder rec;
  rec.record_complete("cat", "span", 0, "k", 7);
  rec.record_instant("cat", "mark");
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "span");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_STREQ(events[0].arg_name, "k");
  EXPECT_EQ(events[0].arg, 7u);
  EXPECT_STREQ(events[1].name, "mark");
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(rec.thread_count(), 1u);
  EXPECT_EQ(rec.dropped_events(), 0u);
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder rec(4);  // already a power of two
  EXPECT_EQ(rec.capacity_per_thread(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i)
    rec.record(TraceEvent{"e", "c", 'i', 0, /*ts_us=*/i, 0, "i", i});
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // The NEWEST four survive, oldest-first.
  for (std::uint64_t k = 0; k < 4; ++k) EXPECT_EQ(events[k].arg, 6u + k);
  EXPECT_EQ(rec.dropped_events(), 6u);
}

TEST(TraceRecorder, CapacityRoundsUpToPowerOfTwo) {
  TraceRecorder rec(5);
  EXPECT_EQ(rec.capacity_per_thread(), 8u);
}

TEST(TraceRecorder, EventsMergeSortedByTimestamp) {
  TraceRecorder rec;
  rec.record(TraceEvent{"late", "c", 'i', 0, 200, 0, nullptr, 0});
  rec.record(TraceEvent{"early", "c", 'i', 0, 100, 0, nullptr, 0});
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "early");
  EXPECT_STREQ(events[1].name, "late");
}

#if OVERCOUNT_TRACE_ENABLED

TEST(TraceSites, SpanAndHelpersRecordOnlyWhenInstalled) {
  TraceRecorder rec;
  {
    Installed guard(rec);
    EXPECT_TRUE(trace_active());
    {
      TraceSpan span("cat", "scope", "n", 1);
      span.set_arg(2);  // result only known at scope end
    }
    trace_instant("cat", "mark");
    trace_complete("cat", "late", trace_now_us());
  }
  EXPECT_FALSE(trace_active());
  trace_instant("cat", "after_uninstall");  // must be a no-op
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(count_events(events, "scope"), 1u);
  EXPECT_EQ(count_events(events, "mark"), 1u);
  EXPECT_EQ(count_events(events, "late"), 1u);
  EXPECT_EQ(count_events(events, "after_uninstall"), 0u);
  for (const auto& e : events) {
    if (std::string_view("scope") == e.name) {
      EXPECT_EQ(e.arg, 2u);
    }
  }
}

TEST(TraceSites, TourKernelEmitsOneSpanPerTour) {
  const Graph g = test_graph();
  constexpr std::size_t kWalks = 24;
  auto streams = derive_streams(3, kWalks);
  std::vector<TourEstimate> out(kWalks);
  auto f = [](NodeId) { return 1.0; };
  TraceRecorder rec;
  {
    Installed guard(rec);
    tour_kernel(g, 0, f, std::span<Rng>(streams),
                std::span<TourEstimate>(out), 8);
  }
  const auto events = rec.events();
  EXPECT_EQ(count_events(events, "tour"), kWalks);
  for (const auto& e : events)
    if (std::string_view("tour") == e.name) {
      EXPECT_STREQ(e.cat, "walk");
      EXPECT_EQ(e.phase, 'X');
      EXPECT_STREQ(e.arg_name, "steps");
      EXPECT_GT(e.arg, 0u);
    }
}

TEST(TraceSites, ScKernelEmitsTrialSpansAndCollisionInstants) {
  const Graph g = test_graph();
  constexpr std::size_t kTrials = 6;
  constexpr std::size_t kEll = 4;
  auto streams = derive_streams(11, kTrials);
  std::vector<ScTrialRaw> raw(kTrials);
  TraceRecorder rec;
  {
    Installed guard(rec);
    sc_kernel(g, 0, 5.0, kEll, std::span<Rng>(streams),
              std::span<ScTrialRaw>(raw), 4);
  }
  const auto events = rec.events();
  EXPECT_EQ(count_events(events, "sc.trial"), kTrials);
  // Every trial runs until exactly ell collisions.
  EXPECT_EQ(count_events(events, "sc.collision"), kTrials * kEll);
}

TEST(TraceSites, ParallelRunnerEmitsDispatchAndTaskSpans) {
  ParallelRunner runner(4);
  TraceRecorder rec;
  {
    Installed guard(rec);
    runner.run<char>(100, [](std::size_t) { return char{0}; });
  }
  // run() returned, so every worker's writes happened-before this drain.
  const auto events = rec.events();
  EXPECT_EQ(count_events(events, "runner.task"), 100u);
  EXPECT_EQ(count_events(events, "runner.dispatch"), 1u);
  EXPECT_GE(rec.thread_count(), 1u);
  EXPECT_LE(rec.thread_count(), 5u);  // 4 workers + the dispatching thread
}

#endif  // OVERCOUNT_TRACE_ENABLED

TEST(TraceDeterminism, TracedEstimatesBitIdenticalToUntraced) {
  const Graph g = test_graph();
  ParallelRunner runner(4);
  const auto plain = run_tours_size(g, 0, 96, 5, runner);
  const auto plain_sc = SampleCollideEstimator(g, 0, 5.0, 8, Rng(9))
                            .estimate();

  TraceRecorder rec;
  TourBatch traced;
  ScEstimate traced_sc;
  {
    Installed guard(rec);
    traced = run_tours_size(g, 0, 96, 5, runner);
    traced_sc = SampleCollideEstimator(g, 0, 5.0, 8, Rng(9)).estimate();
  }
  EXPECT_EQ(traced.sum, plain.sum);  // bitwise, not approximate
  EXPECT_EQ(traced.total_steps, plain.total_steps);
  EXPECT_EQ(traced.completed, plain.completed);
  EXPECT_EQ(traced.truncated, plain.truncated);
  EXPECT_EQ(traced_sc.simple, plain_sc.simple);
  EXPECT_EQ(traced_sc.ml, plain_sc.ml);
  EXPECT_EQ(traced_sc.hops, plain_sc.hops);
#if OVERCOUNT_TRACE_ENABLED
  EXPECT_FALSE(rec.events().empty());
#endif
}

TEST(TraceExport, ChromeTraceJsonParsesWithExpectedStructure) {
  TraceRecorder rec;
  rec.record_complete("cat", "work", 0, "n", 1);
  rec.record_instant("cat", "mark");
  std::ostringstream os;
  write_chrome_trace(os, rec, "unit");
  const JsonValue doc = parse_json(os.str());

  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_process_name = false;
  bool saw_span = false;
  bool saw_instant = false;
  for (const auto& e : events->as_array()) {
    const std::string& ph = e.find("ph")->as_string();
    ASSERT_TRUE(ph == "X" || ph == "i" || ph == "M") << ph;
    if (ph == "M" && e.find("name")->as_string() == "process_name") {
      saw_process_name = true;
      EXPECT_EQ(e.find("args")->find("name")->as_string(), "unit");
    }
    if (ph == "X") {
      saw_span = true;
      EXPECT_GE(e.find("dur")->as_number(), 0.0);
      EXPECT_EQ(e.find("args")->find("n")->as_number(), 1.0);
    }
    if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(e.find("s")->as_string(), "t");
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);

  const JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->find("dropped_events")->as_number(), 0.0);
  EXPECT_EQ(other->find("recording_threads")->as_number(), 1.0);
}

}  // namespace
}  // namespace overcount

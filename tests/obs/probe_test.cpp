// The observability determinism contract: attaching any probe to a walk, a
// batch or an estimator changes NOTHING about the numbers it produces — not
// the per-item results, not the reduced aggregates, at any thread count —
// and the probe statistics themselves fold deterministically.
#include "obs/probe.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "core/parallel.hpp"
#include "core/random_tour.hpp"
#include "core/sample_collide.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "walk/metropolis.hpp"
#include "walk/walkers.hpp"

namespace overcount {
namespace {

Graph test_graph() {
  Rng rng(77);
  return largest_component(balanced_random_graph(400, rng));
}

void expect_same_walk_stats(const WalkStats& a, const WalkStats& b) {
  EXPECT_EQ(a.walks, b.walks);
  EXPECT_EQ(a.visits, b.visits);
  EXPECT_EQ(a.revisits, b.revisits);
  EXPECT_EQ(a.rejects, b.rejects);
  EXPECT_EQ(a.tours, b.tours);
  EXPECT_EQ(a.completed_tours, b.completed_tours);
  EXPECT_EQ(a.truncated_tours, b.truncated_tours);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.sojourn_time, b.sojourn_time);  // bitwise: tree-reduced
  EXPECT_EQ(a.tour_steps.count, b.tour_steps.count);
  EXPECT_EQ(a.tour_steps.sum, b.tour_steps.sum);
  EXPECT_EQ(a.sample_hops.count, b.sample_hops.count);
  EXPECT_EQ(a.sample_hops.sum, b.sample_hops.sum);
  EXPECT_EQ(a.collision_gaps.count, b.collision_gaps.count);
  EXPECT_EQ(a.collision_gaps.sum, b.collision_gaps.sum);
}

TEST(ProbeDeterminism, ProbedTourEqualsUnprobedTour) {
  const Graph g = test_graph();
  Rng plain(5);
  Rng probed_rng(5);
  WalkStats stats;
  WalkStatsProbe probe(stats);
  for (int i = 0; i < 50; ++i) {
    const auto a = random_tour_size(g, 0, plain);
    const auto b = random_tour_size(g, 0, probed_rng, ~0ULL, probe);
    EXPECT_EQ(a.value, b.value);  // bitwise: identical random stream
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.completed, b.completed);
  }
  EXPECT_EQ(stats.tours, 50u);
  EXPECT_EQ(stats.completed_tours, 50u);
  EXPECT_EQ(stats.walks, 50u);
}

TEST(ProbeDeterminism, ProbedCtrwAndMetropolisMatchUnprobed) {
  const Graph g = test_graph();
  {
    Rng a_rng(9);
    Rng b_rng(9);
    WalkStats stats;
    WalkStatsProbe probe(stats);
    for (int i = 0; i < 30; ++i) {
      const auto a = ctrw_sample(g, 0, 5.0, a_rng);
      const auto b = ctrw_sample(g, 0, 5.0, b_rng, probe);
      EXPECT_EQ(a.node, b.node);
      EXPECT_EQ(a.hops, b.hops);
    }
    EXPECT_EQ(stats.samples, 30u);
    EXPECT_GT(stats.sojourn_time, 0.0);
  }
  {
    MetropolisSampler a_walker(g, 64, Rng(11));
    MetropolisSampler b_walker(g, 64, Rng(11));
    WalkStats stats;
    WalkStatsProbe probe(stats);
    for (int i = 0; i < 30; ++i) {
      const auto a = a_walker.sample(0);
      const auto b = b_walker.sample(0, probe);
      EXPECT_EQ(a.node, b.node);
      EXPECT_EQ(a.hops, b.hops);
    }
    EXPECT_EQ(stats.samples, 30u);
    EXPECT_GT(stats.rejects, 0u);  // Metropolis on heterogeneous degrees
  }
  {
    SampleCollideEstimator a_est(g, 0, 5.0, 10, Rng(13));
    SampleCollideEstimator b_est(g, 0, 5.0, 10, Rng(13));
    WalkStats stats;
    WalkStatsProbe probe(stats);
    const auto a = a_est.estimate();
    const auto b = b_est.estimate(probe);
    EXPECT_EQ(a.simple, b.simple);
    EXPECT_EQ(a.ml, b.ml);
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(stats.collisions, 10u);
    EXPECT_EQ(stats.collision_gaps.count, 10u);
  }
}

TEST(ProbeDeterminism, ProbedBatchAggregatesIdenticalAcrossThreadCounts) {
  const Graph g = test_graph();
  constexpr std::size_t kTours = 64;
  constexpr std::uint64_t kSeed = 21;

  WalkStats base_stats;
  const auto base =
      run_tours_size_probed(g, 0, kTours, kSeed, 1u, base_stats);
  ASSERT_TRUE(base.ok());

  for (const unsigned threads : {2u, 8u}) {
    WalkStats stats;
    const auto batch =
        run_tours_size_probed(g, 0, kTours, kSeed, threads, stats);
    EXPECT_EQ(batch.sum, base.sum);  // bitwise, not approximate
    EXPECT_EQ(batch.total_steps, base.total_steps);
    EXPECT_EQ(batch.completed, base.completed);
    expect_same_walk_stats(stats, base_stats);
  }

  // And the probed batch reproduces the unprobed batch exactly.
  const auto plain = run_tours_size(g, 0, kTours, kSeed, 4u);
  EXPECT_EQ(plain.sum, base.sum);
  EXPECT_EQ(plain.total_steps, base.total_steps);

  // The fold itself is consistent: per-batch probe counts match the batch.
  EXPECT_EQ(base_stats.tours, kTours);
  EXPECT_EQ(base_stats.completed_tours, base.completed);
  EXPECT_EQ(base_stats.tour_steps.sum, base.total_steps);
}

TEST(ProbeDeterminism, ProbedScBatchesIdenticalAcrossThreadCounts) {
  const Graph g = test_graph();
  WalkStats one_stats;
  ParallelRunner one(1);
  const auto one_batch =
      run_sc_trials_probed(g, 0, 12, 5.0, 8, 33, one, one_stats);

  WalkStats many_stats;
  ParallelRunner many(8);
  const auto many_batch =
      run_sc_trials_probed(g, 0, 12, 5.0, 8, 33, many, many_stats);

  EXPECT_EQ(one_batch.sum_simple, many_batch.sum_simple);
  EXPECT_EQ(one_batch.sum_ml, many_batch.sum_ml);
  EXPECT_EQ(one_batch.total_hops, many_batch.total_hops);
  expect_same_walk_stats(one_stats, many_stats);
  EXPECT_EQ(one_stats.collisions, 12u * 8u);
}

TEST(Probes, WalkStatsProbeCountsRevisitsPerWalk) {
  // Triangle: a 3-step tour 0 -> 1 -> 2 -> 0 revisits nothing en route; the
  // probe sees the two intermediate nodes as fresh. Walking the SAME nodes
  // again in a second walk must not count as revisits (per-walk scoping).
  WalkStats stats;
  WalkStatsProbe probe(stats);
  probe.walk_begin(0);
  probe.on_visit(1);
  probe.on_visit(2);
  probe.on_visit(1);  // genuine revisit within the walk
  probe.tour_end(4, true);
  probe.walk_begin(0);
  probe.on_visit(1);  // fresh again: new walk
  probe.tour_end(2, false);
  EXPECT_EQ(stats.walks, 2u);
  EXPECT_EQ(stats.visits, 6u);
  EXPECT_EQ(stats.revisits, 1u);
  EXPECT_EQ(stats.completed_tours, 1u);
  EXPECT_EQ(stats.truncated_tours, 1u);
  EXPECT_EQ(stats.tour_steps.sum, 6u);
}

TEST(Probes, RegistryProbeStreamsIntoRegistry) {
  const Graph g = test_graph();
  MetricsRegistry registry;
  RegistryProbe probe(registry, "walk");
  Rng plain_rng(15);
  Rng probed_rng(15);
  double plain_sum = 0.0;
  double probed_sum = 0.0;
  for (int i = 0; i < 20; ++i) {
    plain_sum += random_tour_size(g, 0, plain_rng).value;
    probed_sum += random_tour_size(g, 0, probed_rng, ~0ULL, probe).value;
  }
  EXPECT_EQ(plain_sum, probed_sum);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or_zero("walk.walks"), 20u);
  EXPECT_EQ(snap.counter_or_zero("walk.tours"), 20u);
  EXPECT_EQ(snap.counter_or_zero("walk.tours_truncated"), 0u);
  EXPECT_GT(snap.counter_or_zero("walk.visits"), 20u);
  ASSERT_FALSE(snap.histograms.empty());
  // tour_steps histogram carries one entry per tour.
  for (const auto& [name, h] : snap.histograms) {
    if (name == "walk.tour_steps") {
      EXPECT_EQ(h.count, 20u);
    }
  }
}

}  // namespace
}  // namespace overcount
